"""Trivial reference policies: no management, fixed frequency, oracle-ish.

* :class:`MaxFrequencyPolicy` — the paper's "Baseline": full computing
  ability, no power management.
* :class:`FixedFrequencyPolicy` — everything pinned at one level (used by
  the overhead experiment §5.5 and sensitivity sweeps).
* :class:`UtilizationOraclePolicy` — a non-causal reference that reads the
  workload trace directly and sets every core to the frequency that would
  serve the *known* upcoming rate with a target headroom.  Not in the
  paper; it bounds what any load-tracking policy could achieve and is used
  by the ablation benches.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..sim.engine import PeriodicTask
from .base import PowerManager

if TYPE_CHECKING:  # pragma: no cover
    from ..experiments.runner import RunContext

__all__ = ["MaxFrequencyPolicy", "FixedFrequencyPolicy", "UtilizationOraclePolicy"]


class MaxFrequencyPolicy(PowerManager):
    """Paper baseline: every core at turbo, always."""

    name = "baseline"

    def __init__(self, ctx: "RunContext", use_turbo: bool = True) -> None:
        super().__init__(ctx)
        self.use_turbo = use_turbo

    def setup(self) -> None:
        f = self.table.turbo if self.use_turbo else self.table.fmax
        self.cpu.set_all_frequencies(f)


class FixedFrequencyPolicy(PowerManager):
    """Every *worker* core pinned at ``freq`` (quantised) for the run;
    non-worker cores stay parked by the managed-policy default."""

    name = "fixed"

    def __init__(self, ctx: "RunContext", freq: float) -> None:
        super().__init__(ctx)
        self.freq = freq

    def setup(self) -> None:
        for w in self.server.workers:
            w.core.set_frequency(self.freq)


class UtilizationOraclePolicy(PowerManager):
    """Non-causal load tracker: perfect knowledge of the rate trace.

    Every ``interval`` it reads the *true* arrival rate for the upcoming
    window and sets all cores to the lowest frequency whose capacity keeps
    utilisation below ``target_util`` (including the contention inflation
    at that utilisation).  An upper reference point for Fig 7-style
    comparisons: causal policies should land between the baseline and this.
    """

    name = "oracle"

    def __init__(
        self,
        ctx: "RunContext",
        target_util: float = 0.65,
        interval: float = 1.0,
    ) -> None:
        super().__init__(ctx)
        if not 0.0 < target_util <= 1.0:
            raise ValueError("target_util must be in (0, 1]")
        self.target_util = target_util
        self.interval = interval
        self._task: Optional[PeriodicTask] = None

    def setup(self) -> None:
        self._retarget()
        self._task = self.engine.every(self.interval, self._retarget)

    def teardown(self) -> None:
        if self._task is not None:
            self._task.stop()

    def _retarget(self) -> None:
        rate = self.ctx.trace.rate_at(self.engine.now)
        mean_work = self.ctx.app.service.expected_work()
        inflation = 1.0 + self.ctx.app.contention * self.target_util
        demand = rate * mean_work * inflation  # GHz-seconds per second
        n = self.server.num_workers
        needed = demand / (n * self.target_util) if n else self.table.fmin
        freq = min(max(needed, self.table.fmin), self.table.turbo)
        for w in self.server.workers:
            w.core.set_frequency(freq)
