"""Robustness extension: flash-crowd (MMPP) and closed-loop workloads.

The paper trains and evaluates under open-loop diurnal Poisson traffic.
Two distribution shifts probe whether the learned policy generalises:

* **MMPP bursts** — calm/burst alternation with abrupt rate jumps (flash
  crowds).  DeepPower's state (NumReq, queue composition) refreshes every
  second and the thread controller reacts per millisecond, so the claim
  under test is that the *trained* agent degrades gracefully off its
  training distribution versus the static-profile prediction baselines.
* **Closed loop** — a fixed client population self-throttles under
  queueing, inverting the open-loop tail dynamics.

Both reuse the cached Fig 7 agent (no retraining on the shifted
distribution — that is the point).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..analysis.reporting import format_table
from ..baselines.gemini import GeminiPolicy
from ..baselines.retail import RetailPolicy
from ..baselines.simple import MaxFrequencyPolicy
from ..core.training import evaluate_deeppower
from ..server.metrics import RunMetrics
from ..sim.rng import RngRegistry
from ..workload.apps import get_app
from ..workload.burst import mmpp_trace
from .calibration import calibrate_to_sla
from .fig7_main import calibration_target_for, trained_agent
from .runner import run_policy
from .scenarios import active_profile, evaluation_trace, workers_for

__all__ = ["RobustnessRow", "run_mmpp_robustness", "render_robustness"]


@dataclass(frozen=True)
class RobustnessRow:
    policy: str
    metrics: RunMetrics
    saving_vs_baseline: float


def run_mmpp_robustness(
    app_name: str = "xapian",
    burst_ratio: float = 2.5,
    seed: int = 7,
    full: Optional[bool] = None,
    use_cache: bool = True,
) -> Dict[str, RobustnessRow]:
    """Evaluate all policies under a flash-crowd MMPP arrival process.

    The MMPP's mean rate matches the diurnal calibration (same average
    load); bursts run at ``burst_ratio`` times the calm rate with dwell
    times of a few seconds, far more abrupt than the training trace.
    """
    profile = active_profile(full)
    app = get_app(app_name)
    nw = workers_for(app_name, profile.num_cores)
    # Calibrate on the standard diurnal workload (= training conditions).
    cal = calibrate_to_sla(
        app, evaluation_trace(profile), profile.num_cores, num_workers=nw,
        target_fraction=calibration_target_for(app_name),
    )
    agent, dp_cfg = trained_agent(
        app_name, cal.trace, profile, nw, seed=seed, use_cache=use_cache
    )

    # Build an MMPP with the same mean rate: calm/burst around the mean.
    mean_rate = cal.trace.mean_rate()
    # time-weighted mean with exponential dwell means 4:1 calm:burst
    calm_dwell, burst_dwell = 8.0, 2.0
    w_calm = calm_dwell / (calm_dwell + burst_dwell)
    calm_rate = mean_rate / (w_calm + (1 - w_calm) * burst_ratio)
    burst_rate = calm_rate * burst_ratio
    rngs = RngRegistry(seed + 555)
    trace = mmpp_trace(
        rngs.get("mmpp"), duration=profile.trace_duration,
        calm_rate=calm_rate, burst_rate=burst_rate,
        mean_calm=calm_dwell, mean_burst=burst_dwell,
    )

    runs: Dict[str, RunMetrics] = {}
    runs["baseline"] = run_policy(
        lambda ctx: MaxFrequencyPolicy(ctx), app, trace, profile.num_cores,
        seed=999, num_workers=nw,
    ).metrics
    runs["retail"] = run_policy(
        lambda ctx: RetailPolicy(ctx), app, trace, profile.num_cores,
        seed=999, num_workers=nw,
    ).metrics
    runs["gemini"] = run_policy(
        lambda ctx: GeminiPolicy(ctx), app, trace, profile.num_cores,
        seed=999, num_workers=nw,
    ).metrics
    runs["deeppower"] = evaluate_deeppower(
        agent, app, trace, num_cores=profile.num_cores, seed=999, config=dp_cfg
    ).metrics

    base_p = runs["baseline"].avg_power_watts
    return {
        pol: RobustnessRow(pol, m, 1.0 - m.avg_power_watts / base_p)
        for pol, m in runs.items()
    }


def render_robustness(results: Dict[str, RobustnessRow]) -> str:
    rows = []
    sla = None
    for r in results.values():
        sla = r.metrics.sla
        rows.append([
            r.policy,
            r.metrics.avg_power_watts,
            f"{r.saving_vs_baseline:.1%}",
            f"{r.metrics.tail_latency / sla:.2f}x",
            f"{r.metrics.timeout_rate:.2%}",
        ])
    return format_table(
        ["policy", "power (W)", "saving", "p99/SLA", "timeout"], rows, "{:.2f}"
    )
