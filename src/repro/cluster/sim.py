"""ClusterSim: N machines, one arrival stream, one power budget.

The fleet harness mirrors :func:`repro.experiments.runner.run_policy` one
level up: build the stack, play the trace, drain, summarise.  Everything
lives on a *single* :class:`~repro.sim.engine.Engine` — one event heap,
one clock — so a fleet run is exactly as deterministic as a single-node
run: same seed, same arrivals, same routing decisions, same metrics,
regardless of node count elsewhere in the process or of ``--jobs``.

:class:`FleetSpec` is the picklable grid-cell form (the fleet analogue of
:class:`~repro.parallel.grid.RunSpec`): it carries everything a worker
process needs to rebuild and run the fleet, exposes the same
``cache_payload()`` / ``label`` / ``trace_out`` surface, and executes via
``spec.execute()`` — which is all :func:`repro.parallel.run_grid` needs,
so routing × policy fleets fan out through the existing cached executor.

Observability: with a trace writer attached, a fleet run emits
``fleet-start``, per-window ``node-window`` events (tagged with a
``node`` field), per-node ``node-summary`` events, ``powercap-window``
events from the coordinator, and a final ``fleet-summary`` —
``deeppower trace summarize --group-by node`` rebuilds the per-node /
fleet-wide table from exactly these.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cpu.dvfs import DEFAULT_TABLE, FrequencyTable
from ..cpu.power import DEFAULT_POWER_MODEL, PowerModel
from ..faults.fleet import FleetFaultPlan
from ..server.metrics import LatencyRecorder, RunMetrics
from ..sim.engine import Engine
from ..sim.events import PRIORITY_CONTROL
from ..sim.rng import RngRegistry
from ..workload.apps import get_app
from ..workload.arrivals import OpenLoopSource
from ..workload.trace import WorkloadTrace
from .batch import SCALAR_BATCH_CUTOFF, FleetBatch
from .dispatch import ROUTERS, Dispatcher, StragglerDetector, make_router
from .lifecycle import NodeLifecycle
from .node import NODE_POLICIES, ClusterNode, build_node_driver
from .powercap import PowerCapCoordinator

__all__ = [
    "ClusterConfig",
    "ClusterSim",
    "FleetMetrics",
    "FleetSpec",
    "fleet_trace",
    "fleet_power_budget",
    "merge_run_metrics",
]


@dataclass(frozen=True)
class ClusterConfig:
    """Static description of a fleet (everything but the workload trace)."""

    app: str
    num_nodes: int
    cores_per_node: int
    num_workers: Optional[int] = None
    policy: str = "baseline"
    policy_kwargs: Tuple[Tuple[str, Any], ...] = ()
    routing: str = "round-robin"
    #: Global fleet power budget (W); None disables the coordinator.
    power_cap_watts: Optional[float] = None
    cap_window: float = 1.0
    cap_boost: float = 1.25
    seed: int = 0
    agent_path: Optional[str] = None
    agent_seed: int = 7
    keep_requests: bool = False
    #: Fleet fault scenario; None (or an empty plan) keeps the fleet
    #: immortal and the run bitwise identical to a plain fleet run.
    fault_plan: Optional[FleetFaultPlan] = None
    #: Health-aware dispatch (skip down nodes, de-weight degraded ones).
    #: None = on exactly when a fault plan is active; False = the
    #: no-failover ablation.
    health_aware: Optional[bool] = None
    #: Straggler detector: degrade a node whose window p99 exceeds this
    #: multiple of the fleet median window p99.
    straggler_multiple: float = 3.0
    #: Probability a degraded node is dropped from one routing decision.
    degraded_penalty: float = 0.5
    #: Fleet stepping strategy: "auto" batches cross-node work once the
    #: fleet reaches SCALAR_BATCH_CUTOFF nodes, "batched"/"scalar" force
    #: one mode.  Pure execution strategy — results are bitwise identical
    #: either way (tests byte-compare traces), so this field is excluded
    #: from FleetSpec cache payloads.
    stepping: str = "auto"
    #: Hierarchical fleet-RL layer (:class:`repro.hier.HierConfig`): a
    #: fleet-level agent takes over the coordinator's budget apportioning
    #: and/or the dispatcher's routing weights.  ``None`` (the default)
    #: keeps the heuristic coordinator — no agent is built, no extra RNG
    #: stream is drawn, no extra events run, and the run stays bitwise
    #: identical to one from before the hier layer existed.
    hier: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.cores_per_node < 1:
            raise ValueError(
                f"cores_per_node must be >= 1, got {self.cores_per_node}"
            )
        if self.policy not in NODE_POLICIES:
            raise ValueError(
                f"unknown node policy {self.policy!r}; "
                f"available: {sorted(NODE_POLICIES)}"
            )
        if self.routing not in ROUTERS:
            raise ValueError(
                f"unknown routing policy {self.routing!r}; "
                f"available: {sorted(ROUTERS)}"
            )
        if self.power_cap_watts is not None and self.power_cap_watts <= 0:
            raise ValueError(
                f"power_cap_watts must be positive, got {self.power_cap_watts}"
            )
        if self.straggler_multiple <= 1.0:
            raise ValueError(
                f"straggler_multiple must be > 1, got {self.straggler_multiple}"
            )
        if not 0.0 <= self.degraded_penalty <= 1.0:
            raise ValueError(
                f"degraded_penalty must be in [0, 1], got {self.degraded_penalty}"
            )
        if self.stepping not in ("auto", "batched", "scalar"):
            raise ValueError(
                f"stepping must be 'auto', 'batched' or 'scalar', "
                f"got {self.stepping!r}"
            )
        if self.hier is not None:
            from ..hier.config import HierConfig

            if not isinstance(self.hier, HierConfig):
                raise TypeError(
                    f"hier must be a HierConfig, got {type(self.hier).__name__}"
                )
            if self.power_cap_watts is None:
                raise ValueError(
                    "hier requires power_cap_watts: the fleet agent "
                    "apportions the cap budget, so there must be one"
                )

    @property
    def hier_active(self) -> bool:
        """Whether a learned fleet-level coordinator drives this run."""
        return self.hier is not None

    @property
    def batched_stepping(self) -> bool:
        """Whether this fleet steps through the batched cross-node path."""
        if self.stepping == "batched":
            return True
        if self.stepping == "scalar":
            return False
        return self.num_nodes >= SCALAR_BATCH_CUTOFF

    @property
    def resilience_active(self) -> bool:
        """Whether this run carries any fault machinery at all."""
        return self.fault_plan is not None and not self.fault_plan.is_empty


@dataclass
class FleetMetrics:
    """Summary of one fleet run (picklable: plain data only)."""

    num_nodes: int
    duration: float
    #: Fleet-wide metrics over the merged latency distribution; energy and
    #: DVFS switches are summed across nodes.
    fleet: RunMetrics
    #: Per-node metrics in node-id order.
    node_metrics: List[RunMetrics]
    #: Requests routed to each node, in node-id order.
    routed: List[int]
    power_cap_watts: Optional[float] = None
    #: Peak / mean measured fleet power over steady-state cap windows (NaN
    #: without a coordinator).
    max_window_power: float = float("nan")
    mean_window_power: float = float("nan")
    throttled_windows: int = 0
    #: Whether steady-state fleet power stayed within the cap (+5%);
    #: vacuously True without a coordinator.
    cap_ok: bool = True
    # ---- resilience accounting (all zero/empty for immortal fleets) --------
    crashes: int = 0
    dropped_requests: int = 0
    redispatches: int = 0
    partitions: int = 0
    unroutable: int = 0
    # ---- hierarchical-coordinator accounting (zero without a hier layer) ----
    hier_decisions: int = 0
    hier_updates: int = 0
    hier_fed_rounds: int = 0
    #: Per-node up-fraction of the trace window (1.0 without faults).
    node_availability: List[float] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.node_availability is None:
            self.node_availability = [1.0] * self.num_nodes

    @property
    def fleet_availability(self) -> float:
        """Mean per-node up-fraction (1.0 = no downtime anywhere)."""
        if not self.node_availability:
            return 1.0
        return float(sum(self.node_availability) / len(self.node_availability))

    @property
    def routed_imbalance(self) -> float:
        """Max/mean ratio of per-node routed counts (1.0 = perfectly even)."""
        if not self.routed or sum(self.routed) == 0:
            return float("nan")
        mean = sum(self.routed) / len(self.routed)
        return max(self.routed) / mean

    def as_dict(self) -> dict:
        return {
            "num_nodes": self.num_nodes,
            "duration": self.duration,
            "fleet": self.fleet.as_dict(),
            "node_metrics": [m.as_dict() for m in self.node_metrics],
            "routed": list(self.routed),
            "routed_imbalance": self.routed_imbalance,
            "power_cap_watts": self.power_cap_watts,
            "max_window_power": self.max_window_power,
            "mean_window_power": self.mean_window_power,
            "throttled_windows": self.throttled_windows,
            "cap_ok": self.cap_ok,
            "crashes": self.crashes,
            "dropped_requests": self.dropped_requests,
            "redispatches": self.redispatches,
            "partitions": self.partitions,
            "unroutable": self.unroutable,
            "hier_decisions": self.hier_decisions,
            "hier_updates": self.hier_updates,
            "hier_fed_rounds": self.hier_fed_rounds,
            "node_availability": list(self.node_availability),
            "fleet_availability": self.fleet_availability,
        }


def merge_run_metrics(
    recorders: Sequence[LatencyRecorder], sla: float, duration: float
) -> RunMetrics:
    """Fleet-wide metrics from per-node recorders (quantiles over the pool).

    Concatenates the raw per-request samples rather than averaging node
    quantiles — a p99 of averages is not the average's p99, and fleet SLA
    compliance is defined over the full request population.
    """
    merged = LatencyRecorder(sla)
    for rec in recorders:
        merged.latencies.extend(rec.latencies)
        merged.service_times.extend(rec.service_times)
        merged.queue_times.extend(rec.queue_times)
        merged.arrived += rec.arrived
        merged.completed += rec.completed
        merged.timeouts += rec.timeouts
    return merged.summarize(duration)


class ClusterSim:
    """Build and run one fleet: nodes + dispatcher + coordinator + source.

    Parameters
    ----------
    config:
        The fleet description (:class:`ClusterConfig`).
    trace:
        The *shared* arrival-rate trace; one open-loop source plays it and
        the dispatcher splits the stream across nodes.  Scale it for the
        whole fleet (see :func:`fleet_trace`).
    obs:
        Optional :class:`~repro.obs.Observability`; the caller owns its
        lifecycle (the sim flushes but never closes it).
    table, power_model:
        Shared DVFS table / power model for every node.
    fleet_agent:
        Optional pre-built :class:`~repro.hier.FleetAgent` to reuse (the
        hier training loop carries one agent across episodes); only valid
        with ``config.hier`` set.  ``None`` builds a fresh one from the
        hier-namespaced seed.
    """

    def __init__(
        self,
        config: ClusterConfig,
        trace: WorkloadTrace,
        obs: Any = None,
        table: FrequencyTable = DEFAULT_TABLE,
        power_model: PowerModel = DEFAULT_POWER_MODEL,
        fleet_agent: Any = None,
    ) -> None:
        self.config = config
        self.trace = trace
        self.obs = obs
        self._trace_writer = obs.trace if obs is not None else None
        self.app = get_app(config.app)
        self.engine = Engine()
        self.rngs = RngRegistry(config.seed)
        self.nodes: List[ClusterNode] = [
            ClusterNode(
                self.engine,
                i,
                self.app,
                config.cores_per_node,
                num_workers=config.num_workers,
                seed=config.seed,
                table=table,
                power_model=power_model,
                keep_requests=config.keep_requests,
            )
            for i in range(config.num_nodes)
        ]
        self.router = make_router(config.routing)
        # Resilience machinery exists only when a fault plan is active, so
        # a faultless fleet draws no extra RNG and schedules no extra
        # events — bitwise identical to a run without this layer.
        resilience = config.resilience_active
        health_aware = (
            resilience if config.health_aware is None else bool(config.health_aware)
        )
        # The dispatch stream also backs learned routing weights; like the
        # degraded de-weighting it is only *drawn* when a weighted decision
        # actually happens, so merely creating it never perturbs a run.
        hier_weights = config.hier is not None and config.hier.controls_weights
        self.dispatcher = Dispatcher(
            self.nodes,
            self.router,
            health_aware=health_aware,
            rng=(
                self.rngs.get("dispatch")
                if (resilience or hier_weights)
                else None
            ),
            degraded_penalty=config.degraded_penalty,
        )
        self.lifecycle: Optional[NodeLifecycle] = None
        self.detector: Optional[StragglerDetector] = None
        self.drivers = [
            build_node_driver(
                node,
                config.policy,
                dict(config.policy_kwargs),
                agent_path=config.agent_path,
                agent_seed=config.agent_seed,
            )
            for node in self.nodes
        ]
        self.source = OpenLoopSource(
            self.engine,
            trace,
            self.app.service,
            self.app.sla,
            self.dispatcher.submit,
            self.rngs.get("arrivals"),
        )
        self.coordinator: Optional[PowerCapCoordinator] = None
        self.fleet_agent: Any = None
        self.shared_replay: Any = None
        if fleet_agent is not None and config.hier is None:
            raise ValueError(
                "fleet_agent given but config.hier is None; enable the hier "
                "layer to use a fleet agent"
            )
        if config.hier is not None:
            # Runtime-only import: repro.hier imports this package's
            # siblings, so the dependency must not be module-level here.
            from ..hier import (
                LearnedBudgetCoordinator,
                SharedReplay,
                build_fleet_agent,
            )
            from ..parallel.pool import derive_seed

            if fleet_agent is not None:
                self.fleet_agent = fleet_agent
            else:
                self.fleet_agent = build_fleet_agent(
                    config.num_nodes,
                    config.hier,
                    derive_seed(config.seed, "hier", "fleet-agent"),
                )
            self.coordinator = LearnedBudgetCoordinator(
                self.engine,
                self.nodes,
                config.power_cap_watts,
                self.fleet_agent,
                config.hier,
                self.app.sla,
                window=config.cap_window,
                boost=config.cap_boost,
                trace=self._trace_writer,
                dispatcher=(
                    self.dispatcher if config.hier.controls_weights else None
                ),
            )
            if config.hier.shared_replay and config.policy == "deeppower":
                node_agents = [
                    d.agent for d in self.drivers if hasattr(d, "agent")
                ]
                proto = node_agents[0].replay
                self.shared_replay = SharedReplay(
                    proto.capacity,
                    proto.state_dim,
                    proto.action_dim,
                    derive_seed(config.seed, "hier", "shared-replay"),
                )
                for node, agent in zip(self.nodes, node_agents):
                    self.shared_replay.bind(agent, node.node_id)
                self.coordinator.shared_replay = self.shared_replay
        elif config.power_cap_watts is not None:
            self.coordinator = PowerCapCoordinator(
                self.engine,
                self.nodes,
                config.power_cap_watts,
                window=config.cap_window,
                boost=config.cap_boost,
                trace=self._trace_writer,
            )
        if resilience:
            self.lifecycle = NodeLifecycle(
                self.engine,
                self.nodes,
                config.fault_plan,
                dispatcher=self.dispatcher,
                coordinator=self.coordinator,
                trace=self._trace_writer,
            )
            self.dispatcher.on_unroutable = self.lifecycle.handle_unroutable
            if self.coordinator is not None:
                self.coordinator.lifecycle = self.lifecycle
            self.detector = StragglerDetector(
                self.nodes,
                multiple=config.straggler_multiple,
                on_change=self._on_health_change,
            )
        # Batched fleet stepping: stack per-node state into fleet-wide
        # arrays and route dispatch / power-cap reads through them.  Built
        # last so every override the coordinator or fault harness installs
        # is already in place when the batch snapshots node state.
        self.batch: Optional[FleetBatch] = None
        if config.batched_stepping:
            self.batch = FleetBatch(self.nodes)
            self.dispatcher.attach_batch(self.batch)
            if self.coordinator is not None:
                self.coordinator.attach_batch(self.batch)
        # Per-node energy at the last telemetry window (node-window events).
        self._win_energy = np.zeros(len(self.nodes))
        self._win_time = 0.0

    def _adopt_batched_controllers(self) -> None:
        """Coalesce per-node controller ticks into one fleet tick.

        Only engages for tick-driven policies that expose a
        ``.controller`` (the "controller" fixed-parameter policy and
        fault-free DeepPower fleets); everything else keeps its per-node
        tasks.  DeepPower fleets under a fault plan are excluded because
        the resilience watchdog stops/starts individual controllers
        mid-run.  Called after every driver, the coordinator and the
        lifecycle have started, so frequency overrides are all installed
        and the adoption validation sees the final tick topology.
        """
        if self.batch is None:
            return
        cfg = self.config
        if cfg.policy == "deeppower" and cfg.resilience_active:
            return
        controllers = []
        for driver in self.drivers:
            ctrl = getattr(driver, "controller", None)
            if ctrl is None:
                return
            controllers.append(ctrl)
        self.batch.adopt_controllers(
            controllers, live_tick_counts=cfg.policy == "deeppower"
        )

    def _on_health_change(self, node: ClusterNode, state: str) -> None:
        if self._trace_writer is not None:
            event = "node-degraded" if state == "degraded" else "node-restored"
            self._trace_writer.emit(event, t=self.engine.now, node=node.node_id)

    # -------------------------------------------------------------- telemetry

    def _node_ceiling(self, idx: int) -> float:
        if self.coordinator is not None:
            return self.coordinator.caps[idx].ceiling
        return self.nodes[idx].cpu.table.turbo

    def _emit_node_windows(self) -> None:
        tw = self._trace_writer
        now = self.engine.now
        dt = now - self._win_time
        energies = (
            self.batch.sample_energy()
            if self.batch is not None
            else np.array([n.monitor.total_energy() for n in self.nodes])
        )
        for i, node in enumerate(self.nodes):
            energy = float(energies[i])
            tw.emit(
                "node-window",
                t=now,
                node=i,
                power_w=(energy - self._win_energy[i]) / dt if dt > 0 else 0.0,
                queue_len=node.queue_len(),
                busy_workers=node.busy_workers(),
                routed=node.routed,
                completed=node.server.metrics.completed,
                timeouts=node.server.metrics.timeouts,
                ceiling=self._node_ceiling(i),
            )
            self._win_energy[i] = energy
        self._win_time = now

    # -------------------------------------------------------------------- run

    def run(self, drain_grace: Optional[float] = None) -> FleetMetrics:
        """Play the shared trace through the fleet and summarise.

        Mirrors the single-node runner's protocol: power/energy accounting
        closes at trace end, then an event-stepped drain (bounded by
        ``drain_grace``, default ``10 * SLA``) lets in-flight requests
        finish so their latencies count.
        """
        cfg = self.config
        duration = self.trace.duration
        tw = self._trace_writer
        if tw is not None:
            tw.emit(
                "fleet-start",
                t=self.engine.now,
                app=cfg.app,
                num_nodes=cfg.num_nodes,
                cores_per_node=cfg.cores_per_node,
                policy=cfg.policy,
                routing=cfg.routing,
                power_cap_watts=cfg.power_cap_watts,
                seed=cfg.seed,
                trace_duration=duration,
            )
        for driver in self.drivers:
            if driver is not None and hasattr(driver, "start"):
                driver.start()
        if self.coordinator is not None:
            self.coordinator.start()
        if self.lifecycle is not None:
            self.lifecycle.start()
        self._adopt_batched_controllers()
        health_task = None
        if self.detector is not None:
            health_task = self.engine.every(
                cfg.cap_window,
                self.detector.check,
                start_delay=cfg.cap_window,
                priority=PRIORITY_CONTROL + 1,
            )
        window_task = None
        if tw is not None:
            self._win_energy = np.array(
                [n.monitor.total_energy() for n in self.nodes]
            )
            self._win_time = self.engine.now
            window_task = self.engine.every(
                cfg.cap_window,
                self._emit_node_windows,
                start_delay=cfg.cap_window,
                priority=PRIORITY_CONTROL + 3,
            )
        self.source.start()

        self.engine.run_until(duration)

        # Power accounting stops at trace end (paper convention: the
        # workload window, not the drain tail).
        node_energy = [n.monitor.total_energy() for n in self.nodes]
        node_switches = [n.cpu.total_switches() for n in self.nodes]
        if self.lifecycle is not None:
            # Downtime accounting also closes at trace end: availability is
            # defined over the workload window, not the drain tail.
            self.lifecycle.finalize(duration)

        grace = drain_grace if drain_grace is not None else 10.0 * self.app.sla
        deadline = duration + grace
        while any(n.server.drain_remaining() > 0 for n in self.nodes):
            nxt = self.engine.next_event_time()
            if nxt is None or nxt > deadline:
                break
            self.engine.step()

        if window_task is not None:
            window_task.stop()
        if health_task is not None:
            health_task.stop()
        if self.coordinator is not None:
            self.coordinator.stop()
        if self.batch is not None:
            self.batch.detach()
        for driver in self.drivers:
            if driver is not None and hasattr(driver, "stop"):
                driver.stop()

        node_metrics: List[RunMetrics] = []
        for i, node in enumerate(self.nodes):
            m = node.server.metrics.summarize(duration)
            m.energy_joules = node_energy[i]
            m.avg_power_watts = (
                node_energy[i] / duration if duration > 0 else float("nan")
            )
            m.dvfs_switches = node_switches[i]
            node_metrics.append(m)

        fleet = merge_run_metrics(
            [n.server.metrics for n in self.nodes], self.app.sla, duration
        )
        fleet.energy_joules = float(sum(node_energy))
        fleet.avg_power_watts = (
            fleet.energy_joules / duration if duration > 0 else float("nan")
        )
        fleet.dvfs_switches = int(sum(node_switches))

        coord = self.coordinator
        life = self.lifecycle
        availability = (
            life.availability(duration) if life else [1.0] * cfg.num_nodes
        )
        result = FleetMetrics(
            num_nodes=cfg.num_nodes,
            duration=duration,
            fleet=fleet,
            node_metrics=node_metrics,
            routed=self.dispatcher.routed_counts(),
            power_cap_watts=cfg.power_cap_watts,
            max_window_power=coord.max_window_power() if coord else float("nan"),
            mean_window_power=coord.mean_window_power() if coord else float("nan"),
            throttled_windows=coord.throttled_windows if coord else 0,
            cap_ok=coord.cap_ok() if coord else True,
            crashes=life.crashes if life else 0,
            dropped_requests=life.dropped if life else 0,
            redispatches=life.redispatches if life else 0,
            partitions=life.partitions if life else 0,
            unroutable=self.dispatcher.unroutable,
            hier_decisions=int(getattr(coord, "decisions", 0) or 0),
            hier_updates=(
                int(coord.agent.updates)
                if coord is not None and hasattr(coord, "agent")
                else 0
            ),
            hier_fed_rounds=int(getattr(coord, "fed_rounds", 0) or 0),
            node_availability=availability,
        )

        if tw is not None:
            if fleet.completed == 0:
                tw.emit(
                    "run-warning",
                    t=self.engine.now,
                    warning="zero-completions",
                    message=(
                        "fleet run finished without completing any request; "
                        "latency statistics are NaN and sla_met is False"
                    ),
                )
            for i, m in enumerate(node_metrics):
                tw.emit(
                    "node-summary",
                    t=self.engine.now,
                    node=i,
                    routed=result.routed[i],
                    availability=result.node_availability[i],
                    downtime=life.downtime[i] if life else 0.0,
                    metrics=m.as_dict(),
                )
            tw.emit(
                "fleet-summary",
                t=self.engine.now,
                num_nodes=cfg.num_nodes,
                routed=result.routed,
                power_cap_watts=cfg.power_cap_watts,
                max_window_power=result.max_window_power,
                mean_window_power=result.mean_window_power,
                throttled_windows=result.throttled_windows,
                cap_ok=result.cap_ok,
                crashes=result.crashes,
                dropped_requests=result.dropped_requests,
                redispatches=result.redispatches,
                partitions=result.partitions,
                unroutable=result.unroutable,
                fleet_availability=result.fleet_availability,
                metrics=fleet.as_dict(),
            )
        if self.obs is not None:
            self.obs.flush()
        return result


# ---------------------------------------------------------------- grid cells

@dataclass(frozen=True)
class FleetSpec:
    """One (routing, policy) cell of a fleet grid — the fleet RunSpec.

    Exposes the same surface :func:`repro.parallel.run_grid` consumes:
    ``cache_payload()`` for the result cache, ``label`` / ``app`` /
    ``policy`` / ``seed`` for trace naming, ``trace_out`` for per-cell
    observability traces, and ``execute()`` for the pool worker.
    """

    app: str
    policy: str
    trace: WorkloadTrace
    num_nodes: int
    cores_per_node: int
    seed: int
    num_workers: Optional[int] = None
    routing: str = "round-robin"
    policy_kwargs: Tuple[Tuple[str, Any], ...] = ()
    power_cap_watts: Optional[float] = None
    cap_window: float = 1.0
    cap_boost: float = 1.25
    agent_path: Optional[str] = None
    agent_seed: int = 7
    label: str = ""
    trace_out: Optional[str] = None
    #: Trace storage layout (segment rotation, gzip/zstd codec, per-node
    #: shards).  Like ``trace_out`` these shape a side artifact, not the
    #: result, so they stay out of ``cache_payload``.
    trace_segment_events: Optional[int] = None
    trace_compress: Optional[str] = None
    trace_shard_by_node: bool = False
    fault_plan: Optional[FleetFaultPlan] = None
    health_aware: Optional[bool] = None
    straggler_multiple: float = 3.0
    degraded_penalty: float = 0.5
    #: Execution strategy only (results are bitwise identical either way),
    #: so deliberately NOT part of ``cache_payload``: a cached scalar
    #: result is valid for a batched request and vice versa.
    stepping: str = "auto"
    #: Hierarchical fleet-RL layer; None = heuristic coordinator.
    hier: Optional[Any] = None

    def cache_payload(self) -> dict:
        from ..parallel.cache import file_digest, plan_digest

        return {
            "kind": "fleet-spec",
            "app": self.app,
            "policy": self.policy,
            "routing": self.routing,
            "trace_edges": self.trace.edges,
            "trace_rates": self.trace.rates,
            "num_nodes": self.num_nodes,
            "cores_per_node": self.cores_per_node,
            "num_workers": self.num_workers,
            "seed": self.seed,
            "policy_kwargs": list(self.policy_kwargs),
            "power_cap_watts": self.power_cap_watts,
            "cap_window": self.cap_window,
            "cap_boost": self.cap_boost,
            "agent_digest": file_digest(self.agent_path) if self.agent_path else None,
            "agent_seed": self.agent_seed if self.agent_path else None,
            "label": self.label,
            # A faulted run must never collide with a clean run of the same
            # spec: the digest is None exactly when the plan is a no-op.
            "fault_plan": plan_digest(self.fault_plan),
            "health_aware": self.health_aware,
            "straggler_multiple": self.straggler_multiple,
            "degraded_penalty": self.degraded_penalty,
            # Learned-coordinator runs must never collide with heuristic
            # runs of the same spec; the payload covers every
            # learning-relevant hier field.
            "hier": self.hier.cache_payload() if self.hier is not None else None,
        }

    def to_config(self) -> ClusterConfig:
        return ClusterConfig(
            app=self.app,
            num_nodes=self.num_nodes,
            cores_per_node=self.cores_per_node,
            num_workers=self.num_workers,
            policy=self.policy,
            policy_kwargs=self.policy_kwargs,
            routing=self.routing,
            power_cap_watts=self.power_cap_watts,
            cap_window=self.cap_window,
            cap_boost=self.cap_boost,
            seed=self.seed,
            agent_path=self.agent_path,
            agent_seed=self.agent_seed,
            fault_plan=self.fault_plan,
            health_aware=self.health_aware,
            straggler_multiple=self.straggler_multiple,
            degraded_penalty=self.degraded_penalty,
            stepping=self.stepping,
            hier=self.hier,
        )

    def execute(self) -> Tuple[FleetMetrics, Dict[str, Any]]:
        """Build the fleet from scratch and run it (pool-worker entry)."""
        from ..obs import Observability

        obs = None
        if self.trace_out:
            meta = {
                "app": self.app,
                "policy": self.policy,
                "routing": self.routing,
                "num_nodes": self.num_nodes,
                "seed": self.seed,
                "label": self.label,
            }
            # Only hier runs carry the extra meta key: a hier-disabled
            # trace stays byte-identical to a pre-hier fleet trace.
            if self.hier is not None:
                meta["hier"] = f"{self.hier.algo}:{self.hier.control}"
            obs = Observability.from_paths(
                trace_out=self.trace_out,
                meta=meta,
                trace_segment_events=self.trace_segment_events,
                trace_compress=self.trace_compress,
                trace_shard_key="node" if self.trace_shard_by_node else None,
            )
        try:
            sim = ClusterSim(self.to_config(), self.trace, obs=obs)
            metrics = sim.run()
            return metrics, {}
        finally:
            if obs is not None:
                obs.close()


# ------------------------------------------------------------------- helpers

def fleet_trace(
    base_trace: WorkloadTrace,
    app_name: str,
    num_nodes: int,
    workers_per_node: int,
    load: float = 0.55,
) -> WorkloadTrace:
    """Scale a diurnal trace so the *fleet* runs at mean utilisation ``load``.

    The single shared stream must carry ``num_nodes`` times the traffic a
    one-node trace would: the mean rate targets ``load`` of the aggregate
    worker capacity across the whole fleet.
    """
    app = get_app(app_name)
    target = app.rps_for_load(load, num_nodes * workers_per_node)
    return base_trace.scaled_to_mean(target)


def fleet_power_budget(
    num_nodes: int,
    cores_per_node: int,
    fraction: float = 0.7,
    table: FrequencyTable = DEFAULT_TABLE,
    power_model: PowerModel = DEFAULT_POWER_MODEL,
) -> float:
    """A deterministic cluster budget ``fraction`` of the way up the
    fleet's controllable power range.

    The range runs from the aggregate fmin floor (every core busy at the
    lowest level — the least the coordinator can enforce) to the
    worst-case all-busy turbo draw.  Interpolating keeps the budget
    feasible for any ``fraction`` in (0, 1] regardless of how much the
    uncontrollable package constant dominates small sockets, while
    ``fraction < 1`` guarantees the cap bites under turbo-happy policies.
    """
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    busy = np.ones(cores_per_node, dtype=bool)
    floor = num_nodes * power_model.socket_power(
        np.full(cores_per_node, table.fmin), busy
    )
    worst_turbo = num_nodes * power_model.socket_power(
        np.full(cores_per_node, table.turbo), busy
    )
    return float(floor + fraction * (worst_turbo - floor))
