"""Schema-versioned JSONL run traces with buffered atomic writes.

A trace is an append-only sequence of JSON events, one per line.  The
first line is always a ``trace-header`` event carrying the schema version
and free-form run metadata; every later event has a ``kind`` plus
whatever fields its emitter chose (see EXPERIMENTS.md for the catalog:
``drl-step``, ``controller-window``, ``rapl-window``, ``watchdog-trip``,
``checkpoint``, ``run-summary``, ...).

Durability discipline mirrors the checkpoint layer's: events are buffered
in memory and written in batches to ``<path>.part``; :meth:`TraceWriter.close`
flushes, fsyncs and ``os.replace``s the part file over the final name, so
a finished trace file is always complete and a crash leaves at worst a
``.part`` file that readers ignore (or can be inspected by hand — it is
still line-delimited JSON).

Floats are serialised with python's ``repr`` (via :mod:`json`), which
round-trips ``float`` exactly — the trace-vs-in-memory equality the
acceptance tests assert depends on this.
"""

from __future__ import annotations

import json
import os
import warnings
from typing import Any, Dict, Iterator, List, Optional

import numpy as np

__all__ = ["TRACE_SCHEMA", "TraceError", "TraceWriter", "read_trace"]

#: Bump when the event layout changes incompatibly.
TRACE_SCHEMA = 1

#: Events buffered before a batch write (keeps syscalls off the step path).
DEFAULT_BUFFER_EVENTS = 256


class TraceError(RuntimeError):
    """Invalid trace usage or an unreadable/incompatible trace file."""


def _jsonable(obj: Any):
    """JSON fallback for the numpy types instrumented code hands us."""
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.generic):
        return obj.item()
    raise TypeError(f"cannot serialise {type(obj).__name__} into a trace event")


class TraceWriter:
    """Buffered JSONL event sink for one run (or one training session).

    Parameters
    ----------
    path:
        Final trace location.  Writes go to ``path + ".part"`` until
        :meth:`close` atomically publishes the file.
    meta:
        Free-form JSON-able metadata stored in the header event (app,
        policy, seed, profile, ...).
    buffer_events:
        Events accumulated before a batch write.
    """

    def __init__(
        self,
        path: str,
        meta: Optional[Dict[str, Any]] = None,
        buffer_events: int = DEFAULT_BUFFER_EVENTS,
    ) -> None:
        if buffer_events <= 0:
            raise ValueError("buffer_events must be positive")
        self.path = str(path)
        self.part_path = self.path + ".part"
        self.buffer_events = int(buffer_events)
        self.events_written = 0
        self._buf: List[str] = []
        self._closed = False
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._file = open(self.part_path, "w")
        self.emit("trace-header", schema=TRACE_SCHEMA, meta=meta or {})

    # ------------------------------------------------------------------ events

    def emit(self, kind: str, t: Optional[float] = None, **fields: Any) -> None:
        """Append one event.  ``t`` is the virtual (simulation) timestamp."""
        if self._closed:
            raise TraceError(f"emit on closed trace {self.path!r}")
        event: Dict[str, Any] = {"kind": kind}
        if t is not None:
            event["t"] = float(t)
        event.update(fields)
        self._buf.append(json.dumps(event, default=_jsonable))
        self.events_written += 1
        if len(self._buf) >= self.buffer_events:
            self.flush()

    def flush(self) -> None:
        """Write buffered events to the part file (no fsync)."""
        if self._buf:
            self._file.write("\n".join(self._buf) + "\n")
            self._buf.clear()
            self._file.flush()

    def close(self) -> None:
        """Flush, fsync and atomically publish the trace (idempotent)."""
        if self._closed:
            return
        self.flush()
        self._file.flush()
        os.fsync(self._file.fileno())
        self._file.close()
        os.replace(self.part_path, self.path)
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_trace(path: str, strict: bool = True) -> Iterator[Dict[str, Any]]:
    """Yield every event of a JSONL trace, header first.

    With ``strict`` (default) the first event must be a ``trace-header``
    whose schema is known and any damage raises :class:`TraceError`; pass
    ``strict=False`` to inspect damaged or in-progress (``.part``) files —
    lenient reads stop cleanly at the first broken line, so a torn
    (partially written) final line from a crashed writer yields every
    complete event before it instead of poisoning the read.

    An empty (zero-byte) file — a writer that crashed before its first
    flush — raises in strict mode like any other missing-header damage;
    lenient mode warns and yields nothing.

    Lines are read as bytes and decoded individually: a line torn mid-way
    through a multi-byte UTF-8 character is a truncation like any other,
    not a stream-level decode crash.
    """
    if not os.path.exists(path) and os.path.exists(path + ".part"):
        # Convenience for crashed runs: fall back to the unpublished part
        # file (complete lines only; damage surfaces per-line below).
        path = path + ".part"
    with open(path, "rb") as f:
        first = True
        for lineno, raw in enumerate(f, start=1):
            if not raw.strip():
                continue
            try:
                event = json.loads(raw.decode("utf-8").strip())
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                if strict:
                    raise TraceError(f"{path}:{lineno}: bad JSON ({exc})") from exc
                return  # truncated/torn tail of a crashed run
            if not isinstance(event, dict):
                if strict:
                    raise TraceError(
                        f"{path}:{lineno}: trace event is not a JSON object"
                    )
                return
            if first:
                first = False
                if strict:
                    if event.get("kind") != "trace-header":
                        raise TraceError(f"{path}: missing trace-header event")
                    schema = event.get("schema")
                    if schema != TRACE_SCHEMA:
                        raise TraceError(
                            f"{path}: unsupported trace schema {schema!r} "
                            f"(this reader understands {TRACE_SCHEMA})"
                        )
            yield event
        if first:
            # Zero events: a writer that died before its first flush, or a
            # file that was never a trace.  Strict treats the missing
            # header as damage; lenient warns so scripted summaries of a
            # crashed run directory don't die on the one empty file.
            if strict:
                raise TraceError(f"{path}: empty trace (no events)")
            warnings.warn(f"{path}: empty trace (no events)", stacklevel=2)
