"""Shared experiment configuration: smoke vs full profiles.

Every experiment reads an :class:`ExperimentProfile`.  The default (smoke)
profile keeps pytest-benchmark runs in seconds; setting the environment
variable ``REPRO_FULL=1`` (or passing ``full=True``) upgrades to the
full-scale profile whose results are recorded in EXPERIMENTS.md.

Per-app worker counts mirror the paper: Masstree runs 8 of 20 workers
("8 worker threads of Masstree since its memory overhead"), i.e. roughly
half the socket here.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional


from ..sim.rng import RngRegistry
from ..workload.apps import SIM_APPS, AppSpec, get_app
from ..workload.trace import WorkloadTrace, diurnal_trace

__all__ = [
    "ExperimentProfile",
    "SMOKE",
    "FULL",
    "active_profile",
    "workers_for",
    "evaluation_trace",
]


@dataclass(frozen=True)
class ExperimentProfile:
    """Scale knobs for the experiment harness."""

    name: str
    num_cores: int
    trace_duration: float
    trace_segments: int
    train_episodes: int
    sample_count: int  # distribution-sampling experiments (Fig 1/2)
    table3_duration: float
    seed: int = 2023

    @property
    def is_full(self) -> bool:
        return self.name == "full"


SMOKE = ExperimentProfile(
    name="smoke",
    num_cores=4,
    trace_duration=60.0,
    trace_segments=30,
    train_episodes=8,
    sample_count=4000,
    table3_duration=60.0,
)

FULL = ExperimentProfile(
    name="full",
    num_cores=8,
    trace_duration=120.0,
    trace_segments=40,
    train_episodes=70,
    sample_count=20000,
    table3_duration=240.0,
)


def active_profile(full: Optional[bool] = None) -> ExperimentProfile:
    """The profile selected by the ``full`` flag or ``REPRO_FULL`` env var."""
    if full is None:
        full = os.environ.get("REPRO_FULL", "") not in ("", "0", "false")
    return FULL if full else SMOKE


#: Fraction of the socket each app's worker pool occupies (Masstree uses
#: fewer workers per the paper; everything else fills the socket).
_WORKER_FRACTION: Dict[str, float] = {
    "masstree": 0.5,
}


def workers_for(app_name: str, num_cores: int) -> int:
    """Worker-thread count for an app on a socket of ``num_cores``."""
    frac = _WORKER_FRACTION.get(app_name, 1.0)
    return max(1, int(round(num_cores * frac)))


def evaluation_trace(
    profile: ExperimentProfile,
    seed_offset: int = 0,
) -> WorkloadTrace:
    """The (unscaled) diurnal evaluation trace for a profile."""
    rngs = RngRegistry(profile.seed + seed_offset)
    return diurnal_trace(
        rngs.get("eval-trace"),
        duration=profile.trace_duration,
        num_segments=profile.trace_segments,
    )


def app_for(name: str) -> AppSpec:
    """Profile-independent app lookup (always the sim-scale catalog)."""
    return get_app(name)


def all_app_names():
    return tuple(SIM_APPS)
