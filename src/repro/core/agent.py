"""DeepPower's DRL agent: paper-architecture actor/critic on DDPG.

§4.6: the actor is a fully-connected network with three hidden layers of
32, 24 and 16 units (ReLU), where the input state passes a first shared
layer and then two separate branches — one per thread-controller parameter
— each ending in a sigmoid.  The critic concatenates the action after the
first hidden layer.  Everything is small enough (~2-3k parameters) to train
on CPU between DRL steps.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..nn.network import TwoHeadMLP
from ..nn.serialization import load_modules, save_modules
from ..rl.ddpg import DdpgAgent, DdpgConfig
from .state_observer import STATE_DIM

__all__ = [
    "ACTION_DIM",
    "ACTOR_TRUNK",
    "ACTOR_HEAD",
    "build_actor",
    "default_ddpg_config",
    "DeepPowerAgent",
]

#: (BaseFreq, ScalingCoef)
ACTION_DIM = 2
#: Shared trunk width (first hidden layer of the paper's 32-24-16 stack).
ACTOR_TRUNK = (32,)
#: Branch widths (remaining hidden layers, one branch per action).
ACTOR_HEAD = (24, 16)


def build_actor(rng: np.random.Generator) -> TwoHeadMLP:
    """The paper's actor: shared 8->32 layer, two 24->16->sigmoid branches.

    The final linear layer of each branch is initialised small (standard
    DDPG practice, Lillicrap et al. use U(-3e-3, 3e-3)) so the sigmoid
    starts near 0.5 instead of saturated at an action-space corner, where
    its gradient would vanish.
    """
    actor = TwoHeadMLP(
        STATE_DIM, list(ACTOR_TRUNK), list(ACTOR_HEAD), rng, output_activation="sigmoid"
    )
    for head in (actor.head_a, actor.head_b):
        last_linear = head.layers[-2]  # [..., Linear, Sigmoid]
        last_linear.weight.data *= 0.01
        last_linear.bias.data[...] = 0.0
    return actor


def default_ddpg_config(**overrides) -> DdpgConfig:
    """Paper-default DDPG hyper-parameters for DeepPower."""
    cfg = DdpgConfig(
        state_dim=STATE_DIM,
        action_dim=ACTION_DIM,
        gamma=0.9,
        tau=0.01,
        actor_lr=1e-3,
        critic_lr=2e-3,
        batch_size=64,
        buffer_capacity=50_000,
        warmup=20,
        noise_mu=0.3,
        noise_sigma=1.0,
        noise_decay=0.995,
        noise_min_sigma=0.05,
    )
    for key, val in overrides.items():
        if not hasattr(cfg, key):
            raise TypeError(f"unknown DdpgConfig field {key!r}")
        setattr(cfg, key, val)
    return cfg


class DeepPowerAgent(DdpgAgent):
    """DDPG specialised to DeepPower's state/action spaces.

    Adds the save/load workflow the paper describes ("save the neural
    network parameters after training ... run the framework with a short
    workload" §5.2).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        config: Optional[DdpgConfig] = None,
    ) -> None:
        cfg = config or default_ddpg_config()
        if cfg.state_dim != STATE_DIM or cfg.action_dim != ACTION_DIM:
            raise ValueError(
                f"DeepPower requires state_dim={STATE_DIM}, action_dim={ACTION_DIM}"
            )
        super().__init__(lambda: build_actor(rng), cfg, rng)

    # ------------------------------------------------------------ persistence

    def save(self, path: str) -> None:
        """Persist actor + critic (+ targets) parameters to ``path``."""
        save_modules(
            {
                "actor": self.actor,
                "actor_target": self.actor_target,
                "critic": self.critic,
                "critic_target": self.critic_target,
            },
            path,
        )

    def load(self, path: str) -> None:
        """Restore parameters saved by :meth:`save`."""
        load_modules(
            {
                "actor": self.actor,
                "actor_target": self.actor_target,
                "critic": self.critic,
                "critic_target": self.critic_target,
            },
            path,
        )

    def parameter_count(self) -> int:
        """Actor parameter count (paper §5.5 reports 2096)."""
        return self.actor.num_parameters()
