"""State observer: telemetry -> normalised 8-dim DRL state (paper §4.4.1).

The state is ``(NumReq, QueueLen, Queue25, Queue50, Queue75, Core25,
Core50, Core75)``.  The paper's observer "produces a normalized state
vector"; absolute scales differ per app and load, so normalisation is
adaptive: each dimension is divided by a running maximum (never below a
floor), keeping every component in [0, 1] without per-app feature
engineering — which is precisely the generality claim DeepPower makes over
ReTail/Gemini.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..server.telemetry import TelemetrySnapshot

__all__ = ["StateObserver", "STATE_DIM"]

#: Dimensionality of the DeepPower state vector.
STATE_DIM = 8


class StateObserver:
    """Normalises raw telemetry into the agent's state space.

    Parameters
    ----------
    num_workers:
        Worker-thread count: the CoreX features are bounded by it, so it
        seeds their normaliser.
    expected_peak_rps:
        Optional prior for the NumReq normaliser (e.g. the trace's peak RPS
        times the window).  Without it the running max adapts from data.
    decay:
        Per-observation decay of the running maxima, letting the normaliser
        track a workload whose scale shrinks (1.0 = pure running max).
    """

    def __init__(
        self,
        num_workers: int,
        expected_peak_rps: Optional[float] = None,
        window: float = 1.0,
        decay: float = 1.0,
    ) -> None:
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.num_workers = num_workers
        self.decay = decay
        num_req_floor = (
            expected_peak_rps * window if expected_peak_rps else float(num_workers)
        )
        # Floors: NumReq, QueueLen, Queue25/50/75, Core25/50/75.
        self._max = np.array(
            [
                max(num_req_floor, 1.0),
                float(num_workers),
                float(num_workers),
                float(num_workers),
                float(num_workers),
                float(num_workers),
                float(num_workers),
                float(num_workers),
            ]
        )
        self._floor = self._max.copy()
        self.history: List[np.ndarray] = []
        self.raw_history: List[np.ndarray] = []
        self.keep_history = False

    def observe(self, snapshot: TelemetrySnapshot) -> np.ndarray:
        """Convert one telemetry snapshot into a normalised state vector."""
        raw = snapshot.state_vector()
        if raw.shape != (STATE_DIM,):
            raise ValueError(f"expected {STATE_DIM}-dim telemetry, got {raw.shape}")
        if self.decay < 1.0:
            self._max = np.maximum(self._max * self.decay, self._floor)
        self._max = np.maximum(self._max, raw)
        state = np.clip(raw / self._max, 0.0, 1.0)
        if self.keep_history:
            self.history.append(state)
            self.raw_history.append(raw)
        return state

    def reset(self) -> None:
        """Reset normalisers to their floors (new workload)."""
        self._max = self._floor.copy()
        self.history.clear()
        self.raw_history.clear()

    # ------------------------------------------------------------- persistence

    def state_dict(self) -> Dict:
        """Snapshot of the adaptive normalisers (histories are artifacts,
        not state, and are not captured)."""
        return {"max": self._max.copy(), "floor": self._floor.copy()}

    def load_state_dict(self, state: Dict) -> None:
        max_arr = np.asarray(state["max"], dtype=np.float64)
        floor_arr = np.asarray(state["floor"], dtype=np.float64)
        if max_arr.shape != (STATE_DIM,) or floor_arr.shape != (STATE_DIM,):
            raise ValueError("observer snapshot has wrong dimensionality")
        self._max = max_arr.copy()
        self._floor = floor_arr.copy()
