"""Tests for service-time processes and request objects."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import (
    FEATURE_DIM,
    DeterministicService,
    LognormalCorrelatedService,
    Request,
)


class TestLognormalCorrelatedService:
    def test_sample_mean_matches_target(self, rng):
        svc = LognormalCorrelatedService(mean_work=2.0, sigma=0.6, rho=0.5)
        works, _ = svc.sample_batch(rng, 50_000)
        assert works.mean() == pytest.approx(2.0, rel=0.05)

    def test_expected_work(self):
        svc = LognormalCorrelatedService(mean_work=3.5, sigma=0.8)
        assert svc.expected_work() == pytest.approx(3.5)

    def test_tail_ratio_analytic_vs_empirical(self, rng):
        svc = LognormalCorrelatedService(mean_work=1.0, sigma=1.0, rho=0.5)
        works, _ = svc.sample_batch(rng, 200_000)
        emp = np.quantile(works, 0.99) / works.mean()
        assert emp == pytest.approx(svc.tail_ratio(0.99), rel=0.1)

    def test_higher_sigma_longer_tail(self):
        lo = LognormalCorrelatedService(mean_work=1.0, sigma=0.3)
        hi = LognormalCorrelatedService(mean_work=1.0, sigma=1.1)
        assert hi.tail_ratio() > lo.tail_ratio()

    def test_features_have_expected_shape(self, rng):
        svc = LognormalCorrelatedService(mean_work=1.0, sigma=0.5)
        w, f = svc.sample(rng)
        assert f.shape == (FEATURE_DIM,)
        works, feats = svc.sample_batch(rng, 10)
        assert works.shape == (10,) and feats.shape == (10, FEATURE_DIM)

    def test_rho_controls_feature_predictability(self, rng):
        """R^2 of log-work on the visible feature ~ rho^2."""
        for rho in (0.2, 0.9):
            svc = LognormalCorrelatedService(mean_work=1.0, sigma=0.8, rho=rho)
            works, feats = svc.sample_batch(rng, 20_000)
            r = np.corrcoef(np.log(works), feats[:, 0])[0, 1]
            assert r == pytest.approx(rho, abs=0.05)

    def test_rho_one_is_fully_predictable(self, rng):
        svc = LognormalCorrelatedService(mean_work=1.0, sigma=0.7, rho=1.0)
        works, feats = svc.sample_batch(rng, 5000)
        predicted = np.exp(svc.mu + svc.sigma * feats[:, 0])
        assert np.allclose(works, predicted)

    def test_validation(self):
        with pytest.raises(ValueError):
            LognormalCorrelatedService(mean_work=0.0, sigma=0.5)
        with pytest.raises(ValueError):
            LognormalCorrelatedService(mean_work=1.0, sigma=-1.0)
        with pytest.raises(ValueError):
            LognormalCorrelatedService(mean_work=1.0, sigma=0.5, rho=1.5)

    def test_works_always_positive(self, rng):
        svc = LognormalCorrelatedService(mean_work=1.0, sigma=1.5, rho=0.3)
        works, _ = svc.sample_batch(rng, 10_000)
        assert (works > 0).all()


class TestDeterministicService:
    def test_nearly_constant(self, rng):
        svc = DeterministicService(mean_work=1.0, jitter=0.03)
        works, _ = svc.sample_batch(rng, 10_000)
        assert works.std() / works.mean() < 0.05
        assert np.quantile(works, 0.99) / works.mean() < 1.15

    def test_positive_floor(self, rng):
        svc = DeterministicService(mean_work=1.0, jitter=2.0)
        works, _ = svc.sample_batch(rng, 10_000)
        assert (works > 0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            DeterministicService(mean_work=-1.0)


class TestRequest:
    def _mk(self, arrival=1.0, work=2.0, sla=0.5):
        return Request(
            req_id=0, arrival_time=arrival, work=work,
            features=np.zeros(3), sla=sla,
        )

    def test_latency_none_until_finished(self):
        r = self._mk()
        assert r.latency is None and r.service_time is None and r.queue_time is None

    def test_timing_properties(self):
        r = self._mk(arrival=1.0, sla=0.5)
        r.start_time = 1.2
        r.finish_time = 1.6
        assert r.queue_time == pytest.approx(0.2)
        assert r.service_time == pytest.approx(0.4)
        assert r.latency == pytest.approx(0.6)
        assert r.timed_out  # 0.6 > 0.5

    def test_deadline_and_remaining(self):
        r = self._mk(arrival=1.0, sla=0.5)
        assert r.deadline() == pytest.approx(1.5)
        assert r.time_remaining(1.4) == pytest.approx(0.1)
        assert r.time_remaining(1.7) == pytest.approx(-0.2)

    def test_not_timed_out_within_sla(self):
        r = self._mk(arrival=0.0, sla=1.0)
        r.start_time = 0.0
        r.finish_time = 0.9
        assert not r.timed_out


@given(
    mean=st.floats(min_value=1e-3, max_value=100.0),
    sigma=st.floats(min_value=0.0, max_value=1.5),
    rho=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=40, deadline=None)
def test_property_lognormal_samples_finite_positive(mean, sigma, rho):
    svc = LognormalCorrelatedService(mean_work=mean, sigma=sigma, rho=rho)
    rng = np.random.default_rng(0)
    works, feats = svc.sample_batch(rng, 100)
    assert np.isfinite(works).all() and (works > 0).all()
    assert np.isfinite(feats).all()
