"""Fleet experiment: routing policy × power policy at cluster scale.

The single-node experiments answer "which power policy?"; at fleet scale
the question becomes two-dimensional: how requests are *routed* interacts
with how each node manages *power* (a power-aware router shifts load off
throttled nodes; a JSQ router fights a per-node booster by equalising
queues it is trying to build).  This experiment runs the full grid —
every routing policy × every baseline power policy, uncapped — plus a
power-capped column under the power-aware router, where the
:class:`~repro.cluster.powercap.PowerCapCoordinator` holds the fleet to a
deterministic global budget.

Cells are :class:`~repro.cluster.sim.FleetSpec` objects executed through
:func:`repro.parallel.run_grid` — same fan-out, result cache and per-cell
``--trace-dir`` observability traces as the single-node grids (fleet
traces carry ``node``-tagged events for
``deeppower trace summarize --group-by node``).
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..analysis.reporting import format_table
from ..cluster.sim import FleetSpec, fleet_power_budget, fleet_trace
from ..parallel.grid import run_grid
from .scenarios import active_profile, evaluation_trace

__all__ = ["run_fleet", "render_fleet", "FLEET_ROUTINGS", "FLEET_POLICIES"]

#: Display order (dict insertion order is the table order).
FLEET_ROUTINGS = ("round-robin", "jsq", "power-aware")
FLEET_POLICIES = ("baseline", "retail", "gemini")

#: Mean fleet utilisation the shared diurnal trace is scaled to.  Chosen so
#: the uncapped fleet meets the SLA with headroom while the capped column
#: shows a measurable (not degenerate) tail cost of losing turbo.
FLEET_LOAD = 0.45
#: Budget position within the fleet's controllable power range.
CAP_FRACTION = 0.7


def fleet_dimensions(profile) -> tuple:
    """(num_nodes, cores_per_node) for a profile (8 nodes at full scale)."""
    if profile.is_full:
        return 8, 4
    return 4, 2


def run_fleet(
    full: Optional[bool] = None,
    jobs: int = 1,
    result_cache=None,
    trace_dir: Optional[str] = None,
    num_nodes: Optional[int] = None,
    app_name: str = "xapian",
    seed: Optional[int] = None,
) -> dict:
    """Run the routing × power-policy fleet grid.

    Returns a plain-data dict (checkpoint/cache friendly):
    ``{"profile", "app", "num_nodes", "cores_per_node", "budget_watts",
    "seed", "rows": [{routing, policy, cap_watts, metrics | error}, ...]}``.
    """
    profile = active_profile(full)
    default_nodes, cores_per_node = fleet_dimensions(profile)
    n_nodes = num_nodes if num_nodes is not None else default_nodes
    run_seed = profile.seed if seed is None else seed
    base = evaluation_trace(profile)
    trace = fleet_trace(base, app_name, n_nodes, cores_per_node, load=FLEET_LOAD)
    budget = fleet_power_budget(n_nodes, cores_per_node, fraction=CAP_FRACTION)

    specs: List[FleetSpec] = []
    for routing in FLEET_ROUTINGS:
        for policy in FLEET_POLICIES:
            specs.append(
                FleetSpec(
                    app=app_name,
                    policy=policy,
                    trace=trace,
                    num_nodes=n_nodes,
                    cores_per_node=cores_per_node,
                    seed=run_seed,
                    routing=routing,
                    label=f"{profile.name}-fleet-{routing}",
                )
            )
    # The capped column: the power-aware router is the one designed to
    # cooperate with the coordinator (throttled nodes shed traffic).
    for policy in FLEET_POLICIES:
        specs.append(
            FleetSpec(
                app=app_name,
                policy=policy,
                trace=trace,
                num_nodes=n_nodes,
                cores_per_node=cores_per_node,
                seed=run_seed,
                routing="power-aware",
                power_cap_watts=budget,
                label=f"{profile.name}-fleet-capped",
            )
        )

    outcomes = run_grid(specs, jobs=jobs, cache=result_cache, trace_dir=trace_dir)
    rows = []
    for spec, outcome in zip(specs, outcomes):
        row = {
            "routing": spec.routing,
            "policy": spec.policy,
            "cap_watts": spec.power_cap_watts,
        }
        if outcome.ok:
            row["metrics"] = outcome.metrics.as_dict()
        else:
            row["error"] = outcome.error
        rows.append(row)
    return {
        "profile": profile.name,
        "app": app_name,
        "num_nodes": n_nodes,
        "cores_per_node": cores_per_node,
        "budget_watts": budget,
        "seed": run_seed,
        "rows": rows,
    }


def _fmt(value, spec: str = "{:.2f}") -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not math.isfinite(value):
        return "n/a"
    return spec.format(value)


def render_fleet(result: dict) -> str:
    """Comparison table: routing × policy with power/QoS/cap columns."""
    headers = [
        "routing",
        "policy",
        "cap(W)",
        "power(W)",
        "peak(W)",
        "energy(J)",
        "p99(ms)",
        "p99/SLA",
        "timeout",
        "imbalance",
        "cap_ok",
    ]
    table_rows = []
    for row in result["rows"]:
        if "error" in row:
            table_rows.append(
                [row["routing"], row["policy"], _fmt(row["cap_watts"], "{:.1f}")]
                + ["ERROR"] * (len(headers) - 3)
            )
            continue
        m = row["metrics"]
        fleet = m["fleet"]
        sla = fleet["sla"]
        table_rows.append(
            [
                row["routing"],
                row["policy"],
                _fmt(row["cap_watts"], "{:.1f}"),
                _fmt(fleet["avg_power_watts"], "{:.1f}"),
                _fmt(m["max_window_power"], "{:.1f}"),
                _fmt(fleet["energy_joules"], "{:.0f}"),
                _fmt(fleet["tail_latency"] * 1e3),
                _fmt(fleet["tail_latency"] / sla if sla else float("nan")),
                _fmt(fleet["timeout_rate"], "{:.2%}"),
                _fmt(m["routed_imbalance"]),
                "yes" if m["cap_ok"] else "NO",
            ]
        )
    lines = [
        (
            f"fleet: {result['num_nodes']} nodes x "
            f"{result['cores_per_node']} cores, app={result['app']}, "
            f"profile={result['profile']}, seed={result['seed']}, "
            f"budget={result['budget_watts']:.1f} W (capped rows)"
        ),
        format_table(headers, table_rows, "{:.2f}"),
    ]
    return "\n".join(lines)
