"""Rebuild Fig 8-style per-interval tables from a run trace.

The paper's Fig 8 reads DeepPower's behaviour as per-second time series:
reward, chosen (BaseFreq, ScalingCoef), resulting average frequency,
queue length and power.  A JSONL trace written with ``--trace-out``
carries exactly those quantities in its ``drl-step`` and
``controller-window`` events; :func:`summarize_trace` joins them back
into one row per DRL interval, bit-identical to the in-memory
:class:`~repro.core.runtime.StepRecord` history of the run that wrote
the trace (floats round-trip exactly through JSON).

``deeppower trace summarize <file>`` renders the table plus an event
census and the run/episode summaries found in the trace.

Both summarizers are **single-pass and bounded-memory** (ISSUE 9): the
fleet view keeps O(nodes) running aggregates (last-window snapshot plus
streaming count/peak/mean per node, streaming power-cap stats) instead of
retaining every ``node-window`` event, and the per-interval join holds
only a sliding window of recent steps (:data:`DEFAULT_JOIN_WINDOW`)
rather than the whole table's worth of join state — summarizing a
multi-gigabyte fleet trace peaks at megabytes of RSS, and the rendered
output is byte-identical to the pre-streaming implementation.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..analysis.reporting import format_table
from .trace import read_trace

__all__ = [
    "TraceSummary",
    "summarize_trace",
    "render_summary",
    "FleetTraceSummary",
    "summarize_fleet_trace",
    "render_fleet_summary",
]

#: Columns of the per-interval table, in render order.
INTERVAL_COLUMNS = (
    "episode", "step", "t", "reward", "r_energy", "r_timeout", "r_queue",
    "base_freq", "scaling_coef", "avg_freq", "queue_len", "rps", "power_w",
    "ticks", "dvfs_switches",
)

#: ``controller-window`` <-> ``drl-step`` join horizon: a window event may
#: arrive up to this many steps after its step event and still join.  In
#: every emitter the window trails its step by at most a handful of
#: events, so the bound only exists to keep join state O(1) instead of
#: O(steps) on production-volume traces.
DEFAULT_JOIN_WINDOW = 4096


def _is_number(value: Any) -> bool:
    """True for real JSON numbers.  ``bool`` is an ``int`` subclass in
    python, so an explicit exclusion keeps ``True`` from summarizing as
    the number 1 (a boolean latency once rendered as 1000.0 ms)."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


@dataclass
class TraceSummary:
    """Everything :func:`summarize_trace` extracts from one trace file."""

    path: str
    meta: Dict[str, Any] = field(default_factory=dict)
    #: Event-kind census over the whole file.
    counts: Dict[str, int] = field(default_factory=dict)
    #: One row per DRL interval (keys: :data:`INTERVAL_COLUMNS`).
    intervals: List[Dict[str, Any]] = field(default_factory=list)
    #: ``run-summary`` metric dicts, in order of appearance.
    run_summaries: List[Dict[str, Any]] = field(default_factory=list)
    #: ``episode-end`` stats, in order of appearance.
    episodes: List[Dict[str, Any]] = field(default_factory=list)
    #: ``run-warning`` events (degenerate runs surface here).
    warnings: List[Dict[str, Any]] = field(default_factory=list)
    #: Control-plane (bus) aggregation — empty for direct-call runs.
    #: Keys: ``drops`` (per channel), ``drop_reasons`` (fault / partition /
    #: shed), ``retries``, ``stale_windows``, ``max_consecutive_stale``,
    #: ``deadline_misses`` (per side), ``degraded_intervals``.
    control: Dict[str, Any] = field(default_factory=dict)


def summarize_trace(
    path: str, strict: bool = True, join_window: int = DEFAULT_JOIN_WINDOW
) -> TraceSummary:
    """Parse a trace and rebuild the per-interval table.

    ``drl-step`` events provide reward/state/action/queue/power;
    ``controller-window`` events (matched by episode + step, within the
    last ``join_window`` steps) contribute tick counts, window frequency
    stats and DVFS switch counts.  Bus-mode runs additionally feed the
    ``control`` aggregation from ``bus-drop``, ``stale-window``,
    ``cmd-retry`` and ``deadline-miss`` events (degraded ``drl-step``
    events carry ``state: null`` and NaN telemetry; they appear in the
    interval table like any other step).
    """
    if join_window < 1:
        raise ValueError(f"join_window must be >= 1, got {join_window}")
    summary = TraceSummary(path=path)
    episode: Optional[int] = None
    # (episode, step) -> row, for joining controller windows onto steps.
    # Bounded: only the newest `join_window` steps stay joinable, so the
    # join state is O(1) in trace length (the rows themselves live on in
    # summary.intervals regardless).
    by_step: "OrderedDict[tuple, Dict[str, Any]]" = OrderedDict()

    def control_bucket(key: str, sub: Any) -> None:
        bucket = summary.control.setdefault(key, {})
        bucket[sub] = bucket.get(sub, 0) + 1

    for event in read_trace(path, strict=strict):
        kind = event.get("kind", "?")
        summary.counts[kind] = summary.counts.get(kind, 0) + 1
        if kind == "trace-header":
            summary.meta = event.get("meta", {})
        elif kind == "episode-start":
            episode = event.get("episode")
        elif kind == "bus-drop":
            control_bucket("drops", event.get("channel", "?"))
            control_bucket("drop_reasons", event.get("reason", "?"))
        elif kind == "cmd-retry":
            summary.control["retries"] = summary.control.get("retries", 0) + 1
        elif kind == "stale-window":
            summary.control["stale_windows"] = (
                summary.control.get("stale_windows", 0) + 1
            )
            summary.control["max_consecutive_stale"] = max(
                summary.control.get("max_consecutive_stale", 0),
                event.get("consecutive", 0) or 0,
            )
        elif kind == "deadline-miss":
            control_bucket("deadline_misses", event.get("side", "?"))
        elif kind == "drl-step":
            reward = event.get("reward") or {}
            # A degraded step can carry a short (or empty) action array;
            # pad with NaN instead of letting action[1] raise IndexError.
            action = list(event.get("action") or ())
            while len(action) < 2:
                action.append(float("nan"))
            row = {
                "episode": episode,
                "step": event.get("step"),
                "t": event.get("t"),
                "reward": reward.get("total", float("nan")),
                "r_energy": reward.get("energy", float("nan")),
                "r_timeout": reward.get("timeout", float("nan")),
                "r_queue": reward.get("queue", float("nan")),
                "base_freq": action[0],
                "scaling_coef": action[1],
                "avg_freq": event.get("avg_freq"),
                "queue_len": event.get("queue_len"),
                "rps": event.get("rps"),
                "power_w": event.get("power_w"),
                "ticks": None,
                "dvfs_switches": None,
            }
            summary.intervals.append(row)
            by_step[(episode, event.get("step"))] = row
            while len(by_step) > join_window:
                by_step.popitem(last=False)
            if event.get("degraded"):
                summary.control["degraded_intervals"] = (
                    summary.control.get("degraded_intervals", 0) + 1
                )
        elif kind == "controller-window":
            row = by_step.get((episode, event.get("step")))
            if row is not None:
                row["ticks"] = event.get("ticks")
                row["dvfs_switches"] = event.get("dvfs_switches")
        elif kind == "run-summary":
            summary.run_summaries.append(event.get("metrics", {}))
        elif kind == "episode-end":
            summary.episodes.append(
                {k: v for k, v in event.items() if k not in ("kind", "t")}
            )
        elif kind == "run-warning":
            summary.warnings.append(event)
    return summary


def _cell(value: Any) -> Any:
    return "-" if value is None else value


def render_summary(
    summary: TraceSummary,
    limit: Optional[int] = None,
    float_fmt: str = "{:.4f}",
) -> str:
    """Text rendering: census, warnings, per-interval table, episodes."""
    lines = [f"trace: {summary.path}"]
    if summary.meta:
        lines.append("meta: " + ", ".join(f"{k}={v}" for k, v in sorted(summary.meta.items())))
    lines.append(
        "events: " + ", ".join(f"{k}={v}" for k, v in sorted(summary.counts.items()))
    )
    if summary.control:
        parts = []
        for key in (
            "drops", "drop_reasons", "retries", "stale_windows",
            "max_consecutive_stale", "deadline_misses", "degraded_intervals",
        ):
            value = summary.control.get(key)
            if value is None:
                continue
            if isinstance(value, dict):
                value = "/".join(f"{k}={v}" for k, v in sorted(value.items()))
            parts.append(f"{key}={value}")
        lines.append("control plane: " + ", ".join(parts))
    for w in summary.warnings:
        lines.append(f"WARNING: {w.get('warning', '?')}: {w.get('message', '')}")
    rows = summary.intervals
    shown = rows if limit is None or len(rows) <= limit else rows[-limit:]
    if shown:
        if shown is not rows:
            lines.append(f"(last {len(shown)} of {len(rows)} intervals)")
        lines.append("")
        lines.append(
            format_table(
                list(INTERVAL_COLUMNS),
                [[_cell(r[c]) for c in INTERVAL_COLUMNS] for r in shown],
                float_fmt,
            )
        )
    else:
        lines.append("(no drl-step events in trace)")
    if summary.episodes:
        headers = sorted(summary.episodes[0])
        lines.append("")
        lines.append("episodes:")
        lines.append(
            format_table(
                headers,
                [[_cell(e.get(h)) for h in headers] for e in summary.episodes],
                float_fmt,
            )
        )
    for m in summary.run_summaries:
        lines.append("")
        lines.append(
            "run summary: "
            + ", ".join(f"{k}={m[k]}" for k in sorted(m))
        )
    return "\n".join(lines)


# ----------------------------------------------------------------- fleet view

@dataclass
class FleetTraceSummary:
    """Per-node / fleet-wide aggregation of a node-tagged fleet trace."""

    path: str
    meta: Dict[str, Any] = field(default_factory=dict)
    counts: Dict[str, int] = field(default_factory=dict)
    #: The ``fleet-start`` event (fleet dimensions, policy, routing, cap).
    fleet_start: Dict[str, Any] = field(default_factory=dict)
    #: One aggregated row per node id, sorted by node.
    nodes: List[Dict[str, Any]] = field(default_factory=list)
    #: Fleet-wide row (from ``fleet-summary``), empty if the trace is
    #: truncated before run end.
    fleet: Dict[str, Any] = field(default_factory=dict)
    #: Power-cap coordination stats (empty when the run was uncapped).
    powercap: Dict[str, Any] = field(default_factory=dict)
    #: Hierarchical-coordinator stats from ``coordinator-decision`` events
    #: (empty when the run used the heuristic coordinator — keeping
    #: non-hier renderings byte-identical to the pre-hier renderer).
    hier: Dict[str, Any] = field(default_factory=dict)
    #: Fault/chaos stats (crashes, redispatches, drops, partitions);
    #: empty for immortal fleets.
    faults: Dict[str, Any] = field(default_factory=dict)
    warnings: List[Dict[str, Any]] = field(default_factory=list)
    #: Streaming per-node ``node-window`` telemetry aggregates, keyed by
    #: node id: ``{"windows", "peak_power_w", "mean_power_w"}``.  Not part
    #: of the rendered table (which stays byte-identical to the
    #: pre-streaming renderer) — programmatic consumers and ``trace
    #: query`` tooling read it directly.
    telemetry: Dict[Any, Dict[str, Any]] = field(default_factory=dict)


def _node_row_from_metrics(node: int, metrics: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "node": node,
        "energy_j": metrics.get("energy_joules"),
        "power_w": metrics.get("avg_power_watts"),
        "completed": metrics.get("completed"),
        "timeouts": metrics.get("timeouts"),
        "p95_ms": _scale_ms(metrics.get("p95_latency")),
        "p99_ms": _scale_ms(metrics.get("tail_latency")),
        "mean_tail_ratio": metrics.get("mean_tail_ratio"),
        "sla_met": metrics.get("sla_met"),
    }


def _scale_ms(seconds: Any) -> Any:
    return seconds * 1e3 if _is_number(seconds) else seconds


def summarize_fleet_trace(path: str, strict: bool = True) -> FleetTraceSummary:
    """Aggregate a fleet trace per node and fleet-wide, in one bounded pass.

    Authoritative per-node rows come from ``node-summary`` events (energy,
    p95/p99 tail latencies, SLA violations); for traces truncated before
    run end (no summaries yet), rows are reconstructed from the last
    ``node-window`` telemetry seen per node, with latency columns absent.
    ``powercap-window`` events contribute budget-compliance stats.

    Memory is O(nodes), not O(events): per node only the *last*
    ``node-window`` snapshot plus streaming count/peak/mean power are
    retained, and power-cap stats stream as count/sum/peak — a trace with
    10x more windows summarizes in the same peak RSS (asserted by
    ``tests/test_obs_streaming_summarize.py``).
    """
    summary = FleetTraceSummary(path=path)
    # Per-node streaming window aggregates (the O(nodes) replacement for
    # the retain-every-window list the seed implementation kept).
    win_count: Dict[Any, int] = {}
    win_last: Dict[Any, Dict[str, Any]] = {}
    win_power_peak: Dict[Any, float] = {}
    win_power_sum: Dict[Any, float] = {}
    win_power_n: Dict[Any, int] = {}
    node_rows: Dict[Any, Dict[str, Any]] = {}
    routed: Dict[Any, Any] = {}
    # Streaming power-cap stats (count/sum/peak over finite window totals).
    cap_windows = 0
    cap_finite_n = 0
    cap_finite_sum: float = 0
    cap_peak: Optional[float] = None
    cap_budget: Optional[float] = None
    cap_throttled = 0
    # Streaming hierarchical-coordinator stats (O(1) like the cap stats).
    hier_decisions = 0
    hier_learned = 0
    hier_reward_n = 0
    hier_reward_sum: float = 0
    hier_updates: Optional[int] = None
    hier_fed_rounds: Optional[int] = None
    downs: Dict[Any, int] = {}
    down_since: Dict[Any, float] = {}
    downtime: Dict[Any, float] = {}
    avail: Dict[Any, Any] = {}
    fault_counts = {
        "crashes": 0,
        "redispatches": 0,
        "drops": 0,
        "partitions": 0,
        "degraded": 0,
    }
    for event in read_trace(path, strict=strict):
        kind = event.get("kind", "?")
        summary.counts[kind] = summary.counts.get(kind, 0) + 1
        if kind == "trace-header":
            summary.meta = event.get("meta", {})
        elif kind == "fleet-start":
            summary.fleet_start = {
                k: v for k, v in event.items() if k not in ("kind", "t")
            }
        elif kind == "node-window":
            node = event.get("node")
            win_count[node] = win_count.get(node, 0) + 1
            win_last[node] = event
            power = event.get("power_w")
            if _is_number(power) and power == power:
                win_power_n[node] = win_power_n.get(node, 0) + 1
                win_power_sum[node] = win_power_sum.get(node, 0) + power
                peak = win_power_peak.get(node)
                if peak is None or power > peak:
                    win_power_peak[node] = power
        elif kind == "node-summary":
            node = event.get("node")
            node_rows[node] = _node_row_from_metrics(node, event.get("metrics", {}))
            routed[node] = event.get("routed")
            if event.get("availability") is not None:
                avail[node] = event.get("availability")
        elif kind == "node-down":
            node = event.get("node")
            downs[node] = downs.get(node, 0) + 1
            down_since[node] = event.get("t", 0.0)
            fault_counts["crashes"] += 1
        elif kind == "node-up":
            node = event.get("node")
            t = event.get("t", 0.0)
            downtime[node] = downtime.get(node, 0.0) + max(
                0.0, t - down_since.pop(node, t)
            )
        elif kind == "redispatch":
            fault_counts["redispatches"] += 1
        elif kind == "request-drop":
            fault_counts["drops"] += 1
        elif kind == "telemetry-partition":
            fault_counts["partitions"] += 1
        elif kind == "node-degraded":
            fault_counts["degraded"] += 1
        elif kind == "fleet-summary":
            metrics = event.get("metrics", {})
            summary.fleet = _node_row_from_metrics("fleet", metrics)
            summary.fleet["routed"] = sum(event.get("routed", []) or [0])
            summary.fleet["windows"] = None
            if event.get("fleet_availability") is not None:
                summary.fleet["avail"] = event.get("fleet_availability")
            if event.get("power_cap_watts") is not None:
                for key, src in (
                    ("budget_w", "power_cap_watts"),
                    ("peak_w", "max_window_power"),
                    ("mean_w", "mean_window_power"),
                    ("throttled", "throttled_windows"),
                    ("cap_ok", "cap_ok"),
                ):
                    summary.powercap[key] = event.get(src)
        elif kind == "powercap-window":
            total = event.get("total_w", float("nan"))
            cap_windows += 1
            # Accept any real number: watt totals that round-tripped
            # through JSON as ints (e.g. an exact 100) count toward
            # peak/mean exactly like their float twins; bools do not.
            if _is_number(total) and total == total:
                cap_finite_n += 1
                cap_finite_sum += total
                if cap_peak is None or total > cap_peak:
                    cap_peak = total
            cap_budget = event.get("budget_w", cap_budget)
            if event.get("throttled"):
                cap_throttled += 1
        elif kind == "coordinator-decision":
            hier_decisions += 1
            if event.get("learned"):
                hier_learned += 1
            reward = event.get("reward")
            if _is_number(reward) and reward == reward:
                hier_reward_n += 1
                hier_reward_sum += reward
            if event.get("updates") is not None:
                hier_updates = event.get("updates")
            if event.get("fed_rounds") is not None:
                hier_fed_rounds = event.get("fed_rounds")
        elif kind == "run-warning":
            summary.warnings.append(event)

    node_ids = sorted(set(win_count) | set(node_rows), key=lambda n: (n is None, n))
    for node in node_ids:
        row = node_rows.get(node)
        if row is None:
            # Truncated trace: fall back to the last telemetry window
            # (counters there are cumulative).
            last = win_last[node]
            row = {
                "node": node,
                "energy_j": None,
                "power_w": last.get("power_w"),
                "completed": last.get("completed"),
                "timeouts": last.get("timeouts"),
                "p95_ms": None,
                "p99_ms": None,
                "mean_tail_ratio": None,
                "sla_met": None,
            }
            routed.setdefault(node, last.get("routed"))
        row["routed"] = routed.get(node)
        row["windows"] = win_count.get(node, 0)
        row["downs"] = downs.get(node, 0)
        if node in avail:
            row["avail"] = avail[node]
        else:
            # Truncated trace: rebuild availability from the node-down /
            # node-up events seen so far (open outages run to trace end).
            duration = summary.fleet_start.get("trace_duration")
            if duration:
                dt = downtime.get(node, 0.0)
                if node in down_since:
                    dt += max(0.0, duration - down_since[node])
                row["avail"] = 1.0 - min(dt, duration) / duration
            else:
                row["avail"] = None
        summary.nodes.append(row)
        n = win_power_n.get(node, 0)
        summary.telemetry[node] = {
            "windows": win_count.get(node, 0),
            "peak_power_w": win_power_peak.get(node),
            "mean_power_w": win_power_sum[node] / n if n else None,
        }

    if summary.fleet and "downs" not in summary.fleet:
        summary.fleet["downs"] = fault_counts["crashes"]
    if any(fault_counts.values()):
        summary.faults = dict(fault_counts)
    if cap_windows:
        summary.powercap["windows"] = cap_windows
        summary.powercap.setdefault("budget_w", cap_budget)
        if cap_finite_n:
            summary.powercap.setdefault("peak_w", cap_peak)
            summary.powercap.setdefault("mean_w", cap_finite_sum / cap_finite_n)
        summary.powercap.setdefault("throttled", cap_throttled)
    if hier_decisions:
        summary.hier["decisions"] = hier_decisions
        summary.hier["learned"] = hier_learned
        if hier_reward_n:
            summary.hier["mean_reward"] = hier_reward_sum / hier_reward_n
        if hier_updates is not None:
            summary.hier["updates"] = hier_updates
        if hier_fed_rounds:
            summary.hier["fed_rounds"] = hier_fed_rounds
    return summary


#: Columns of the per-node table, in render order.
NODE_COLUMNS = (
    "node", "routed", "windows", "power_w", "energy_j", "completed",
    "timeouts", "p95_ms", "p99_ms", "mean_tail_ratio", "sla_met",
    "downs", "avail",
)


def render_fleet_summary(
    summary: FleetTraceSummary, float_fmt: str = "{:.2f}"
) -> str:
    """Text rendering: fleet header, per-node table + fleet row, cap stats."""
    lines = [f"trace: {summary.path}"]
    if summary.meta:
        lines.append(
            "meta: " + ", ".join(f"{k}={v}" for k, v in sorted(summary.meta.items()))
        )
    lines.append(
        "events: " + ", ".join(f"{k}={v}" for k, v in sorted(summary.counts.items()))
    )
    if summary.fleet_start:
        lines.append(
            "fleet: "
            + ", ".join(f"{k}={v}" for k, v in sorted(summary.fleet_start.items()))
        )
    for w in summary.warnings:
        lines.append(f"WARNING: {w.get('warning', '?')}: {w.get('message', '')}")
    rows = list(summary.nodes)
    if summary.fleet:
        rows.append(summary.fleet)
    if not rows:
        lines.append(
            "(no node-tagged events in trace; was this a fleet run? "
            "try plain `trace summarize`)"
        )
        return "\n".join(lines)
    lines.append("")
    lines.append(
        format_table(
            list(NODE_COLUMNS),
            [[_cell(r.get(c)) for c in NODE_COLUMNS] for r in rows],
            float_fmt,
        )
    )
    if summary.powercap:
        pc = summary.powercap
        lines.append("")
        lines.append(
            "powercap: " + ", ".join(f"{k}={v}" for k, v in sorted(pc.items()))
        )
    if summary.hier:
        lines.append("")
        lines.append(
            "hier: "
            + ", ".join(f"{k}={v}" for k, v in sorted(summary.hier.items()))
        )
    if summary.faults:
        lines.append("")
        lines.append(
            "faults: "
            + ", ".join(f"{k}={v}" for k, v in sorted(summary.faults.items()))
        )
    return "\n".join(lines)
