"""Fig 6: diurnal RPS workload (synthetic e-commerce-search equivalent)."""

from conftest import run_once

from repro.experiments.fig6_workload import render_fig6, run_fig6


def test_fig6_workload_trace(benchmark, emit):
    result = run_once(benchmark, run_fig6)
    emit("Fig 6 — RPS over time", render_fig6(result))

    # Structural statistics of the paper's trace: strong diurnal pattern,
    # meaningful peak-to-trough swing, non-negative rates.
    assert result.daily_autocorr > 0.6
    assert result.peak_mean_ratio > 1.4
    assert result.trough_mean_ratio < 0.6
    assert (result.month.rates > 0).all()
    assert (result.downsampled.rates >= 0).all()
