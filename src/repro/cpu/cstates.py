"""Idle C-state model (extension: the paper's explicitly-deferred future work).

The paper's related-work section discusses sleep-state techniques
(DynSleep, uDPM) and notes that "the integration of sleep states into our
methods represents a significant challenge.  We leave this to future
work."  This module supplies the substrate for that extension: a table of
idle states with per-state power and wake latency, plus a per-core idle
governor that demotes an idle core through progressively deeper states the
longer it stays idle (the menu-governor idea) and charges the wake-up
latency to the next request.

Used by :class:`repro.baselines.dynsleep.DynSleepPolicy` and the
sleep-state ablation bench; the core DeepPower reproduction leaves
C-states off, exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..sim.engine import Engine
from .core import Core

__all__ = ["CState", "CStateTable", "IdleGovernor", "DEFAULT_CSTATES"]


@dataclass(frozen=True)
class CState:
    """One idle state.

    Parameters
    ----------
    name:
        e.g. ``C1``/``C6``.
    power_watts:
        Core draw while resident in the state.
    wake_latency:
        Seconds to return to the active state (paper: ~100 us for C6).
    target_residency:
        Minimum expected idle time for the state to pay off; the idle
        governor demotes to this state only after the core has been idle
        this long.
    """

    name: str
    power_watts: float
    wake_latency: float
    target_residency: float


@dataclass(frozen=True)
class CStateTable:
    """Ordered idle states, shallow to deep."""

    states: Tuple[CState, ...]

    def __post_init__(self) -> None:
        if not self.states:
            raise ValueError("need at least one C-state")
        lat = [s.wake_latency for s in self.states]
        res = [s.target_residency for s in self.states]
        pwr = [s.power_watts for s in self.states]
        if lat != sorted(lat) or res != sorted(res):
            raise ValueError("states must be ordered shallow -> deep")
        if pwr != sorted(pwr, reverse=True):
            raise ValueError("deeper states must draw less power")

    def deepest_for_idle(self, idle_so_far: float) -> Optional[CState]:
        """Deepest state whose target residency has been met (None: stay C0)."""
        best = None
        for s in self.states:
            if idle_so_far >= s.target_residency:
                best = s
        return best

    def __iter__(self):
        return iter(self.states)

    def __len__(self) -> int:
        return len(self.states)


#: Latencies/powers shaped after Intel core C-states (C1/C1E/C6).
DEFAULT_CSTATES = CStateTable(
    states=(
        CState("C1", power_watts=0.30, wake_latency=2e-6, target_residency=5e-6),
        CState("C1E", power_watts=0.20, wake_latency=1e-5, target_residency=5e-5),
        CState("C6", power_watts=0.05, wake_latency=1e-4, target_residency=6e-4),
    )
)


class IdleGovernor:
    """Menu-style idle-state manager for one core.

    The owner signals ``enter_idle()`` when the core goes idle and
    ``wake()`` when work arrives.  While idle, the governor demotes the
    core through the C-state table as residency thresholds pass; energy
    is accounted by *overriding* the core's idle power with the state's
    power (bookkept here, since :class:`~repro.cpu.core.Core` meters
    clock-gated idle only).

    ``wake()`` returns the wake latency the caller must charge before the
    core can execute (DynSleep's central trade-off).
    """

    def __init__(self, engine: Engine, core: Core, table: CStateTable = DEFAULT_CSTATES) -> None:
        self.engine = engine
        self.core = core
        self.table = table
        self._idle_since: Optional[float] = None
        self._state: Optional[CState] = None
        self._promote_events: List = []
        #: Joules saved relative to clock-gated idle (diagnostics).
        self.energy_saved = 0.0
        self._state_entered_at = 0.0
        self.wake_count = 0
        self.residency: dict = {s.name: 0.0 for s in table}

    # ------------------------------------------------------------------ state

    @property
    def state(self) -> Optional[CState]:
        """Current idle state (None = C0/active)."""
        return self._state

    def enter_idle(self) -> None:
        """Core went idle; start demotion timers."""
        if self._idle_since is not None:
            return
        now = self.engine.now
        self._idle_since = now
        for s in self.table:
            delay = s.target_residency
            self._promote_events.append(
                self.engine.schedule_after(delay, self._demote_to, s)
            )

    def wake(self) -> float:
        """Work arrived: leave the idle state; returns wake latency (s)."""
        latency = self._state.wake_latency if self._state is not None else 0.0
        self._settle_residency()
        self._idle_since = None
        self._state = None
        for ev in self._promote_events:
            self.engine.cancel(ev)
        self._promote_events.clear()
        if latency > 0.0:
            self.wake_count += 1
        return latency

    # ---------------------------------------------------------------- internal

    def _demote_to(self, state: CState) -> None:
        if self._idle_since is None:
            return
        self._settle_residency()
        self._state = state
        self._state_entered_at = self.engine.now

    def _settle_residency(self) -> None:
        if self._state is None:
            return
        now = self.engine.now
        dt = now - self._state_entered_at
        if dt > 0:
            self.residency[self._state.name] += dt
            idle_power = self.core.power_model.core_power(self.core.frequency, busy=False)
            self.energy_saved += max(idle_power - self._state.power_watts, 0.0) * dt
        self._state_entered_at = now

    def idle_energy_credit(self) -> float:
        """Total joules saved vs clock-gated idle so far."""
        self._settle_residency()
        if self._state is not None:
            self._state_entered_at = self.engine.now
        return self.energy_saved
