"""trace_tail / trace_query: slicing semantics + index-aware skipping.

The fixture trace has a known shape so every slice can be checked
against a plain ``read_trace`` replay; the skipping tests monkeypatch
the query module's segment reader to count which files actually get
opened.
"""

import json

import pytest

import repro.obs.query as query_mod
from repro.cli import main
from repro.obs import TraceWriter, read_trace, trace_query, trace_tail


def _write_trace(path, nodes=4, windows=10, **writer_kw):
    with TraceWriter(path, meta={"seed": 1}, **writer_kw) as tw:
        tw.emit("fleet-start", t=0.0, num_nodes=nodes)
        for win in range(windows):
            t = float(win + 1)
            for node in range(nodes):
                tw.emit("node-window", t=t, node=node, power_w=10.0 + node)
            tw.emit("powercap-window", t=t, total_w=50.0, budget_w=60.0,
                    throttled=False)
        tw.emit("fleet-summary", t=float(windows), metrics={"completed": 1})


class TestQueryApi:
    def test_tail_returns_last_n_in_order(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        _write_trace(path)
        events = list(read_trace(path))
        assert trace_tail(path, n=5) == events[-5:]

    def test_tail_larger_than_trace_returns_all(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        _write_trace(path, nodes=1, windows=2)
        events = list(read_trace(path))
        assert trace_tail(path, n=10_000) == events

    def test_tail_with_filter(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        _write_trace(path)
        got = trace_tail(path, n=3, kind="node-window", node=2)
        ref = [e for e in read_trace(path)
               if e.get("kind") == "node-window" and e.get("node") == 2]
        assert got == ref[-3:]

    def test_query_filters_compose(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        _write_trace(path, nodes=4, windows=10)
        got = list(trace_query(path, kind="node-window", since=3.0, until=5.0))
        assert len(got) == 3 * 4  # windows t=3,4,5 x 4 nodes
        assert all(3.0 <= e["t"] <= 5.0 for e in got)
        assert all(e["kind"] == "node-window" for e in got)

    def test_query_limit_truncates(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        _write_trace(path)
        got = list(trace_query(path, kind="node-window", limit=7))
        ref = [e for e in read_trace(path) if e.get("kind") == "node-window"]
        assert got == ref[:7]

    def test_time_filter_ignores_untimed_events(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        with TraceWriter(path) as tw:
            tw.emit("no-clock")
            tw.emit("timed", t=1.0)
        got = list(trace_query(path, since=0.0))
        assert [e["kind"] for e in got] == ["timed"]

    def test_invalid_arguments_rejected(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        _write_trace(path, nodes=1, windows=1)
        with pytest.raises(ValueError, match="positive"):
            trace_tail(path, n=0)
        with pytest.raises(ValueError, match="positive"):
            list(trace_query(path, limit=-1))

    @pytest.mark.parametrize(
        "layout",
        [
            {"compress": "gzip"},
            {"segment_events": 13},
            {"segment_events": 13, "compress": "gzip", "shard_key": "node"},
        ],
        ids=["gzip", "segmented", "sharded-gz"],
    )
    def test_layout_invariant_results(self, tmp_path, layout):
        plain = str(tmp_path / "plain.jsonl")
        other = str(tmp_path / "other.jsonl")
        _write_trace(plain)
        _write_trace(other, **layout)
        sharded = "shard_key" in layout
        for filters in (
            dict(kind="node-window", node=1),
            dict(since=4.0, until=6.0, kind="node-window"),
            dict(kind="powercap-window"),
        ):
            got = list(trace_query(other, **filters))
            ref = list(trace_query(plain, **filters))
            if sharded and "node" not in filters:
                # cross-shard interleaving is not preserved (documented);
                # the matched multiset must still be identical
                key = lambda e: json.dumps(e, sort_keys=True)  # noqa: E731
                assert sorted(map(key, got)) == sorted(map(key, ref))
            else:
                assert got == ref


class TestIndexSkipping:
    @pytest.fixture
    def opened(self, monkeypatch):
        """Count segment files the query layer actually opens."""
        counter = []
        real = query_mod._iter_jsonl

        def spy(path, codec, strict):
            counter.append(path)
            return real(path, codec, strict)

        monkeypatch.setattr(query_mod, "_iter_jsonl", spy)
        return counter

    def test_time_query_skips_out_of_range_segments(self, tmp_path, opened):
        path = str(tmp_path / "t.jsonl")
        _write_trace(path, nodes=4, windows=40, segment_events=25)
        total_segments = len(query_mod.read_trace_index(path)["segments"])
        got = list(trace_query(path, kind="node-window", since=38.0))
        assert len(got) == 3 * 4  # t=38,39,40
        assert 0 < len(opened) < total_segments

    def test_node_query_skips_foreign_shards(self, tmp_path, opened):
        path = str(tmp_path / "t.jsonl")
        _write_trace(path, nodes=4, windows=10, shard_key="node")
        index = query_mod.read_trace_index(path)
        got = list(trace_query(path, kind="node-window", node=3))
        assert len(got) == 10
        mine = {s["file"] for s in index["segments"] if s.get("shard") == 3}
        assert set(p.rsplit("/", 1)[-1] for p in opened) <= mine

    def test_unfiltered_tail_skips_leading_segments(self, tmp_path, opened):
        path = str(tmp_path / "t.jsonl")
        _write_trace(path, nodes=4, windows=40, segment_events=20)
        events = list(read_trace(path))
        opened.clear()  # read_trace above goes through trace._iter_jsonl anyway
        assert trace_tail(path, n=5) == events[-5:]
        total_segments = len(query_mod.read_trace_index(path)["segments"])
        assert len(opened) <= 1 or len(opened) < total_segments


class TestCli:
    def _trace(self, tmp_path, **kw):
        path = str(tmp_path / "t.jsonl")
        _write_trace(path, **kw)
        return path

    def _lines(self, capsys):
        out = capsys.readouterr().out.strip()
        return [json.loads(line) for line in out.splitlines() if line]

    def test_tail_prints_last_n_json_lines(self, tmp_path, capsys):
        path = self._trace(tmp_path)
        assert main(["trace", "tail", path, "-n", "4"]) == 0
        events = list(read_trace(path))
        assert self._lines(capsys) == events[-4:]

    def test_query_kind_node_filters(self, tmp_path, capsys):
        path = self._trace(tmp_path)
        assert main(["trace", "query", path, "--kind", "node-window",
                     "--node", "2"]) == 0
        lines = self._lines(capsys)
        assert len(lines) == 10
        assert all(e["node"] == 2 for e in lines)

    def test_query_time_window_and_limit(self, tmp_path, capsys):
        path = self._trace(tmp_path)
        assert main(["trace", "query", path, "--since", "3", "--until", "4",
                     "--kind", "node-window", "--limit", "5"]) == 0
        assert len(self._lines(capsys)) == 5

    def test_tail_works_on_sharded_gzip_trace(self, tmp_path, capsys):
        path = self._trace(tmp_path, segment_events=16, compress="gzip",
                           shard_key="node")
        assert main(["trace", "tail", path, "-n", "3",
                     "--kind", "powercap-window"]) == 0
        assert [e["kind"] for e in self._lines(capsys)] == ["powercap-window"] * 3

    def test_missing_file_is_an_error(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.jsonl")
        assert main(["trace", "tail", missing]) == 1
        assert "cannot tail" in capsys.readouterr().err

    def test_bad_n_rejected_by_parser(self, tmp_path):
        path = self._trace(tmp_path, nodes=1, windows=1)
        with pytest.raises(SystemExit):
            main(["trace", "tail", path, "-n", "0"])
