"""Service-time processes with controllable tails and feature predictability.

The paper's evidence chain needs three properties from the workload:

1. **Long tails** (Fig 1): p99 service time is a small multiple (Img-dnn,
   Sphinx) to ~8x (Moses) of the mean.
2. **Feature predictability**: ReTail fits a linear regression from request
   features to service time, Gemini fits a small NN — both must *work* under
   a static load, so part of the service-time variance has to be explained
   by observable features.
3. **Load-dependent drift** (Fig 2): models trained at one load mispredict
   at another.  That part lives in the server's contention inflation, not
   here.

:class:`LognormalCorrelatedService` delivers (1) and (2) with two knobs: the
log-scale ``sigma`` sets the tail, and ``rho`` splits log-variance between a
feature-visible component and pure noise:

    log work = mu + sigma * (rho * z_vis + sqrt(1 - rho^2) * z_hid)

The feature vector exposes ``z_vis`` plus derived nonlinear views — a linear
model recovers the linear part; an NN can also exploit the square term, so
Gemini out-predicts ReTail slightly, as in the original papers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = [
    "ServiceModel",
    "LognormalCorrelatedService",
    "DeterministicService",
    "FEATURE_DIM",
]

#: Width of the feature vector exposed to prediction-based baselines.
FEATURE_DIM = 3


class ServiceModel:
    """Interface: sample (work, features) pairs.  Work is in GHz-seconds."""

    def sample(self, rng: np.random.Generator) -> Tuple[float, np.ndarray]:
        """Draw one request: returns ``(work, features)``."""
        raise NotImplementedError

    def sample_batch(self, rng: np.random.Generator, n: int) -> Tuple[np.ndarray, np.ndarray]:
        """Draw ``n`` requests: returns ``(work[n], features[n, d])``."""
        works = np.empty(n)
        feats = np.empty((n, FEATURE_DIM))
        for i in range(n):
            works[i], feats[i] = self.sample(rng)
        return works, feats

    def expected_work(self) -> float:
        """Expected work per request (GHz-seconds)."""
        raise NotImplementedError


@dataclass(frozen=True)
class LognormalCorrelatedService(ServiceModel):
    """Lognormal work with a feature-visible log-variance share.

    Parameters
    ----------
    mean_work:
        Target E[work] in GHz-seconds.
    sigma:
        Log-scale standard deviation — the tail knob.  p99/mean for a
        lognormal is ``exp(2.326 sigma - sigma^2 / 2)``.
    rho:
        Fraction (in standard deviations) of log-variance visible through
        features; ``rho=1`` makes service time perfectly predictable,
        ``rho=0`` makes features useless.
    """

    mean_work: float
    sigma: float
    rho: float = 0.7

    def __post_init__(self) -> None:
        if self.mean_work <= 0:
            raise ValueError("mean_work must be positive")
        if self.sigma < 0:
            raise ValueError("sigma must be >= 0")
        if not 0.0 <= self.rho <= 1.0:
            raise ValueError("rho must be in [0, 1]")

    @property
    def mu(self) -> float:
        """Log-mean such that E[exp(mu + sigma Z)] == mean_work."""
        return math.log(self.mean_work) - 0.5 * self.sigma * self.sigma

    def tail_ratio(self, q: float = 0.99) -> float:
        """Analytic p_q / mean ratio (Fig 1's headline statistic)."""
        from scipy.stats import norm

        zq = float(norm.ppf(q))
        return math.exp(zq * self.sigma - 0.5 * self.sigma * self.sigma)

    def sample(self, rng: np.random.Generator) -> Tuple[float, np.ndarray]:
        z_vis = rng.standard_normal()
        z_hid = rng.standard_normal()
        u = rng.random()
        logw = self.mu + self.sigma * (
            self.rho * z_vis + math.sqrt(1.0 - self.rho * self.rho) * z_hid
        )
        work = math.exp(logw)
        feats = np.array([z_vis, z_vis * z_vis, u])
        return work, feats

    def sample_batch(self, rng: np.random.Generator, n: int) -> Tuple[np.ndarray, np.ndarray]:
        z_vis = rng.standard_normal(n)
        z_hid = rng.standard_normal(n)
        u = rng.random(n)
        logw = self.mu + self.sigma * (
            self.rho * z_vis + math.sqrt(1.0 - self.rho * self.rho) * z_hid
        )
        works = np.exp(logw)
        feats = np.stack([z_vis, z_vis * z_vis, u], axis=1)
        return works, feats

    def expected_work(self) -> float:
        return self.mean_work


@dataclass(frozen=True)
class DeterministicService(ServiceModel):
    """Nearly constant work with small jitter (Img-dnn-like: fixed-size
    DNN inference, p99 barely above the mean at any load)."""

    mean_work: float  # GHz-seconds
    jitter: float = 0.03  # relative stdev

    def __post_init__(self) -> None:
        if self.mean_work <= 0:
            raise ValueError("mean_work must be positive")
        if self.jitter < 0:
            raise ValueError("jitter must be >= 0")

    def sample(self, rng: np.random.Generator) -> Tuple[float, np.ndarray]:
        w, f = self.sample_batch(rng, 1)
        return float(w[0]), f[0]

    def sample_batch(self, rng: np.random.Generator, n: int) -> Tuple[np.ndarray, np.ndarray]:
        z = rng.standard_normal(n)
        works = self.mean_work * np.maximum(0.2, 1.0 + self.jitter * z)
        feats = np.stack([z, z * z, rng.random(n)], axis=1)
        return works, feats

    def expected_work(self) -> float:
        return self.mean_work
