"""Fig 9: per-core frequency traces on Xapian (ms scale) per policy."""

from conftest import run_once

from repro.experiments.fig9_10_freq_traces import render_freq_traces, run_freq_traces


def test_fig9_xapian_frequency_traces(benchmark, emit):
    results = run_once(benchmark, run_freq_traces, app_name="xapian")
    emit("Fig 9 — per-core frequency behaviour, Xapian", render_freq_traces(results))

    dp = results["deeppower"]
    rt = results["retail"]
    gm = results["gemini"]
    # The paper's visual: DeepPower gradually scales frequency *during*
    # each request (many levels per request) while the prediction-based
    # baselines pick a level once or twice per request.
    assert dp.levels_per_request > 2.0
    assert dp.levels_per_request > rt.levels_per_request
    assert dp.levels_per_request > gm.levels_per_request
    assert rt.levels_per_request < 3.0
    # And because it ramps instead of boosting, DeepPower saturates at
    # turbo for a modest share of the time.
    assert dp.turbo_fraction < 0.5
