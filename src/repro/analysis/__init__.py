"""Analysis helpers: statistics and plain-text reporting."""

from .queueing import MmcQueue, erlang_c, mdc_mean_wait, mg1_mean_wait
from .timeseries import lagged_correlation, moving_average, series_summary, window_binned
from .reporting import format_heatmap, format_markdown_table, format_table, sparkline
from .stats import (
    bootstrap_mean_ci,
    ecdf,
    normalized_cdf,
    quantile,
    relative_error_matrix_stats,
    rmse,
    tail_ratio,
)

__all__ = [
    "erlang_c",
    "MmcQueue",
    "mg1_mean_wait",
    "mdc_mean_wait",
    "ecdf",
    "normalized_cdf",
    "tail_ratio",
    "quantile",
    "rmse",
    "relative_error_matrix_stats",
    "bootstrap_mean_ci",
    "format_table",
    "moving_average",
    "window_binned",
    "lagged_correlation",
    "series_summary",
    "format_markdown_table",
    "format_heatmap",
    "sparkline",
]
