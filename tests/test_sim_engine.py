"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import PRIORITY_CONTROL, PRIORITY_DEFAULT, Engine, SimulationError
from repro.sim.engine import drain


class TestScheduling:
    def test_events_fire_in_time_order(self):
        eng = Engine()
        fired = []
        eng.schedule_at(2.0, fired.append, "b")
        eng.schedule_at(1.0, fired.append, "a")
        eng.schedule_at(3.0, fired.append, "c")
        eng.run_until(5.0)
        assert fired == ["a", "b", "c"]

    def test_same_time_fifo_order(self):
        eng = Engine()
        fired = []
        for i in range(10):
            eng.schedule_at(1.0, fired.append, i)
        eng.run_until(1.0)
        assert fired == list(range(10))

    def test_priority_orders_within_timestamp(self):
        eng = Engine()
        fired = []
        eng.schedule_at(1.0, fired.append, "control", priority=PRIORITY_CONTROL)
        eng.schedule_at(1.0, fired.append, "data", priority=PRIORITY_DEFAULT)
        eng.run_until(1.0)
        assert fired == ["data", "control"]

    def test_schedule_after_uses_relative_delay(self):
        eng = Engine(start_time=10.0)
        seen = []
        eng.schedule_after(1.5, lambda: seen.append(eng.now))
        eng.run_until(20.0)
        assert seen == [11.5]

    def test_schedule_in_past_raises(self):
        eng = Engine()
        eng.run_until(5.0)
        with pytest.raises(SimulationError):
            eng.schedule_at(4.0, lambda: None)

    def test_negative_delay_raises(self):
        eng = Engine()
        with pytest.raises(SimulationError):
            eng.schedule_after(-1.0, lambda: None)

    def test_events_scheduled_during_event_fire(self):
        eng = Engine()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                eng.schedule_after(1.0, chain, n + 1)

        eng.schedule_at(0.5, chain, 0)
        eng.run_until(10.0)
        assert fired == [0, 1, 2, 3]

    def test_run_until_exclusive_leaves_boundary_events(self):
        eng = Engine()
        fired = []
        eng.schedule_at(1.0, fired.append, "x")
        eng.run_until(1.0, inclusive=False)
        assert fired == []
        eng.run_until(1.0)
        assert fired == ["x"]

    def test_clock_advances_to_run_until_time(self):
        eng = Engine()
        eng.run_until(42.0)
        assert eng.now == 42.0

    def test_run_until_past_raises(self):
        eng = Engine()
        eng.run_until(5.0)
        with pytest.raises(SimulationError):
            eng.run_until(4.0)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        eng = Engine()
        fired = []
        h = eng.schedule_at(1.0, fired.append, "x")
        eng.cancel(h)
        eng.run_until(2.0)
        assert fired == []

    def test_cancel_is_idempotent(self):
        eng = Engine()
        h = eng.schedule_at(1.0, lambda: None)
        eng.cancel(h)
        eng.cancel(h)
        assert eng.pending_events == 0

    def test_cancel_after_fire_is_noop(self):
        eng = Engine()
        fired = []
        h = eng.schedule_at(1.0, fired.append, 1)
        eng.run_until(2.0)
        eng.cancel(h)
        assert fired == [1]

    def test_heap_compaction_preserves_live_events(self):
        eng = Engine()
        fired = []
        handles = [eng.schedule_at(1.0 + i * 1e-6, lambda: None) for i in range(10000)]
        keeper = eng.schedule_at(2.0, fired.append, "live")
        for h in handles:
            eng.cancel(h)
        assert eng.pending_events == 1
        eng.run_until(3.0)
        assert fired == ["live"]


class TestRun:
    def test_run_drains_heap(self):
        eng = Engine()
        fired = []
        for i in range(5):
            eng.schedule_at(float(i), fired.append, i)
        count = eng.run()
        assert count == 5
        assert fired == [0, 1, 2, 3, 4]

    def test_run_max_events(self):
        eng = Engine()
        for i in range(5):
            eng.schedule_at(float(i), lambda: None)
        assert eng.run(max_events=3) == 3
        assert eng.pending_events == 2

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_reentrancy_guard(self):
        eng = Engine()

        def evil():
            eng.run_until(10.0)

        eng.schedule_at(1.0, evil)
        with pytest.raises(SimulationError):
            eng.run_until(5.0)

    def test_processed_events_counter(self):
        eng = Engine()
        for i in range(3):
            eng.schedule_at(float(i + 1), lambda: None)
        eng.run_until(10.0)
        assert eng.processed_events == 3


class TestPeriodicTask:
    def test_fires_at_fixed_interval(self):
        eng = Engine()
        times = []
        eng.every(1.0, lambda: times.append(eng.now))
        eng.run_until(5.5)
        assert times == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_start_delay_zero_fires_immediately(self):
        eng = Engine()
        times = []
        eng.every(1.0, lambda: times.append(eng.now), start_delay=0.0)
        eng.run_until(2.5)
        assert times == [0.0, 1.0, 2.0]

    def test_stop_halts_future_firings(self):
        eng = Engine()
        count = [0]
        task = eng.every(1.0, lambda: count.__setitem__(0, count[0] + 1))
        eng.run_until(2.5)
        task.stop()
        eng.run_until(10.0)
        assert count[0] == 2
        assert task.stopped

    def test_callback_can_stop_its_own_task(self):
        eng = Engine()
        fired = []
        task = eng.every(1.0, lambda: (fired.append(eng.now), task.stop()))
        eng.run_until(10.0)
        assert fired == [1.0]

    def test_no_drift_over_many_firings(self):
        eng = Engine()
        times = []
        eng.every(0.1, lambda: times.append(eng.now))
        eng.run_until(10.0)
        assert len(times) == 100
        assert abs(times[-1] - 10.0) < 1e-9

    def test_invalid_interval_raises(self):
        with pytest.raises(SimulationError):
            Engine().every(0.0, lambda: None)

    def test_fire_count(self):
        eng = Engine()
        task = eng.every(1.0, lambda: None)
        eng.run_until(3.5)
        assert task.fire_count == 3

    def test_stop_inside_callback_cancels_scheduled_successor(self):
        # _fire schedules the successor *before* the callback runs; stopping
        # from inside the callback must cancel that pre-scheduled event, not
        # leave it to fire (or linger) in the heap.
        eng = Engine()
        task = eng.every(1.0, lambda: task.stop())
        eng.run_until(1.0)
        assert task.stopped
        assert task.fire_count == 1
        assert eng.pending_events == 0

    def test_zero_start_delay_immediate_stop_fires_exactly_once(self):
        eng = Engine()
        fired = []
        task = eng.every(
            1.0, lambda: (fired.append(eng.now), task.stop()), start_delay=0.0
        )
        eng.run_until(5.0)
        assert fired == [0.0]
        assert eng.pending_events == 0

    def test_negative_start_delay_raises(self):
        with pytest.raises(SimulationError):
            Engine().every(1.0, lambda: None, start_delay=-0.5)

    def test_mass_cancellation_of_periodic_tasks_compacts_heap(self):
        # Stopping thousands of periodic tasks crosses the engine's lazy-
        # cancellation compaction threshold; live events must survive it.
        eng = Engine()
        tasks = [eng.every(1.0 + i * 1e-9, lambda: None) for i in range(5000)]
        fired = []
        eng.schedule_at(2.0, fired.append, "live")
        for t in tasks:
            t.stop()
        assert eng.pending_events == 1
        assert len(eng._heap) < 5000  # compaction actually ran
        eng.run_until(3.0)
        assert fired == ["live"]


class TestDrain:
    def test_drain_reaches_horizon(self):
        eng = Engine()
        fired = []
        eng.schedule_at(4.5, fired.append, "x")
        drain(eng, 5.0, [1.0, 1.0, 1.0])
        assert eng.now == 5.0
        assert fired == ["x"]


@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=200
    )
)
@settings(max_examples=50, deadline=None)
def test_property_events_fire_in_nondecreasing_time_order(times):
    eng = Engine()
    fired = []
    for t in times:
        eng.schedule_at(t, lambda t=t: fired.append(eng.now))
    eng.run()
    assert fired == sorted(fired)
    assert len(fired) == len(times)


@given(
    n=st.integers(min_value=1, max_value=100),
    cancel_idx=st.sets(st.integers(min_value=0, max_value=99)),
)
@settings(max_examples=50, deadline=None)
def test_property_cancelled_subset_never_fires(n, cancel_idx):
    eng = Engine()
    fired = set()
    handles = [eng.schedule_at(float(i % 7), lambda i=i: fired.add(i)) for i in range(n)]
    cancelled = {i for i in cancel_idx if i < n}
    for i in cancelled:
        eng.cancel(handles[i])
    eng.run()
    assert fired == set(range(n)) - cancelled
