"""Cluster fleet simulation: many DeepPower-managed nodes behind a dispatcher.

The paper manages one 20-core machine; a production deployment is a *fleet*
of such machines behind a load balancer, sharing one arrival stream and one
facility power budget.  This package adds that layer on top of the
single-node stack without modifying it:

* :class:`ClusterNode` — one simulated machine (its own
  :class:`~repro.cpu.topology.Cpu`, :class:`~repro.server.server.Server`
  and RAPL-style :class:`~repro.cpu.rapl.PowerMonitor`) running any
  existing per-node power policy (a baseline or a frozen DeepPower agent),
  all on one shared :class:`~repro.sim.engine.Engine` clock
  (:mod:`repro.cluster.node`),
* :class:`Dispatcher` + pluggable routers — round-robin, join-shortest-queue
  and frequency-weighted power-aware routing splitting one shared arrival
  stream across nodes (:mod:`repro.cluster.dispatch`),
* :class:`PowerCapCoordinator` — apportions a global cluster power budget
  across nodes every window from RAPL-style readings, throttling each
  node's frequency ceiling (including turbo eligibility) and
  redistributing headroom from idle nodes to loaded ones
  (:mod:`repro.cluster.powercap`),
* :class:`ClusterSim` / :class:`FleetSpec` — the fleet harness plus a
  picklable grid cell so fleet experiments fan out through
  :func:`repro.parallel.run_grid` exactly like single-node grids
  (:mod:`repro.cluster.sim`),
* :class:`NodeLifecycle` + :class:`StragglerDetector` — the resilience
  layer: node crash/restart/recovery driven by a seed-deterministic
  :class:`~repro.faults.FleetFaultPlan`, failover re-dispatch with retry
  budgets and exponential backoff, health-aware routing that skips down
  nodes and de-weights degraded ones, and membership-aware power-budget
  redistribution (:mod:`repro.cluster.lifecycle`,
  :mod:`repro.cluster.dispatch`).

Fleet runs are seed-deterministic (one engine, per-node namespaced RNG
streams) and emit ``node``-tagged observability events that
``deeppower trace summarize --group-by node`` aggregates back into
per-node and fleet-wide tables.
"""

from .dispatch import (
    ROUTERS,
    Dispatcher,
    JoinShortestQueueRouter,
    PowerAwareRouter,
    RoundRobinRouter,
    StragglerDetector,
)
from .lifecycle import NodeLifecycle
from .node import (
    DEGRADED,
    DOWN,
    HEALTHY,
    NODE_POLICIES,
    NODE_STATES,
    RECOVERING,
    ClusterNode,
    NodeContext,
    build_node_driver,
)
from .powercap import CapWindow, FrequencyCap, PowerCapCoordinator
from .sim import (
    ClusterConfig,
    ClusterSim,
    FleetMetrics,
    FleetSpec,
    fleet_power_budget,
    fleet_trace,
    merge_run_metrics,
)

__all__ = [
    "ClusterNode",
    "NodeContext",
    "NODE_POLICIES",
    "build_node_driver",
    "Dispatcher",
    "RoundRobinRouter",
    "JoinShortestQueueRouter",
    "PowerAwareRouter",
    "ROUTERS",
    "PowerCapCoordinator",
    "FrequencyCap",
    "CapWindow",
    "ClusterConfig",
    "ClusterSim",
    "FleetMetrics",
    "FleetSpec",
    "fleet_trace",
    "fleet_power_budget",
    "merge_run_metrics",
    "NodeLifecycle",
    "StragglerDetector",
    "HEALTHY",
    "DEGRADED",
    "DOWN",
    "RECOVERING",
    "NODE_STATES",
]
