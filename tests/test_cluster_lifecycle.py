"""Tests for node failure/recovery: crash semantics, failover dispatch,
membership-aware power capping, and the chaos determinism contract."""

import json
import os

import numpy as np
import pytest

from repro.cluster import (
    DOWN,
    HEALTHY,
    RECOVERING,
    ClusterConfig,
    ClusterSim,
    Dispatcher,
    NodeLifecycle,
    PowerCapCoordinator,
    RoundRobinRouter,
    fleet_power_budget,
)
from repro.cluster.node import ClusterNode
from repro.cpu import DEFAULT_POWER_MODEL, DEFAULT_TABLE, Core
from repro.faults import FleetEvent, FleetFaultPlan
from repro.obs import Observability
from repro.server import Worker
from repro.sim.engine import Engine
from repro.workload.apps import get_app
from repro.workload.request import Request
from repro.workload.trace import constant_trace


APP = "xapian"


def _req(i=0, arrival=0.0, work=1.0, sla=10.0):
    return Request(
        req_id=i, arrival_time=arrival, work=work,
        features=np.zeros(3), sla=sla,
    )


def _trace(duration=8.0, load=0.5, nodes=2, cores=2):
    rps = get_app(APP).rps_for_load(load, nodes * cores)
    return constant_trace(rps, duration)


def _config(**overrides):
    base = dict(
        app=APP, num_nodes=2, cores_per_node=2, policy="retail",
        routing="jsq", seed=11,
    )
    base.update(overrides)
    return ClusterConfig(**base)


def _run_json(config, trace):
    metrics = ClusterSim(config, trace).run()
    return json.dumps(metrics.as_dict(), sort_keys=True)


def _crash_plan(node=1, time=2.0, down=2.0, **over):
    base = dict(recovery_time=0.5)
    base.update(over)
    return FleetFaultPlan(
        events=(FleetEvent(time, "node.crash", node=node, duration=down),),
        **base,
    )


class TestWorkerAbort:
    def _setup(self, engine):
        core = Core(engine, 0, DEFAULT_TABLE, DEFAULT_POWER_MODEL)
        done = []
        worker = Worker(engine, core, lambda w, r: done.append(r))
        return core, worker, done

    def test_abort_returns_request_with_reset_stamps(self, engine):
        core, worker, done = self._setup(engine)
        core.set_frequency(2.0)
        req = _req(work=4.0)
        worker.start(req, effective_work=4.0)
        engine.run_until(1.0)
        assert worker.abort() is req
        assert not worker.busy and not core.busy
        assert req.start_time is None
        assert req.core_id is None
        assert req.effective_work is None
        # The cancelled completion never fires.
        engine.run_until(10.0)
        assert done == []

    def test_abort_idle_worker_is_noop(self, engine):
        _, worker, _ = self._setup(engine)
        assert worker.abort() is None


class TestServerEvacuatePauseResume:
    def _fleet_node(self, cores=2, seed=5):
        engine = Engine()
        node = ClusterNode(engine, 0, get_app(APP), cores, seed=seed)
        return engine, node.server

    def test_evacuate_returns_in_flight_then_queued_and_pauses(self):
        engine, server = self._fleet_node(cores=2)
        for i in range(5):
            server.submit(_req(i))
        engine.run_until(1e-4)  # let workers pick up the first two
        assert sum(1 for w in server.workers if w.busy) == 2
        evacuated = server.evacuate()
        assert [r.req_id for r in evacuated] == [0, 1, 2, 3, 4]
        assert server.paused
        assert len(server.queue) == 0
        assert all(not w.busy for w in server.workers)
        assert np.isnan(server._begin_times).all()

    def test_paused_server_queues_without_dispatching(self):
        engine, server = self._fleet_node()
        server.pause()
        server.submit(_req(0))
        engine.run_until(0.5)
        assert len(server.queue) == 1
        assert all(not w.busy for w in server.workers)
        server.resume()
        assert not server.paused
        assert len(server.queue) == 0  # drained into the freed workers
        engine.run_until(5.0)
        assert server.metrics.completed == 1

    def test_resume_on_running_server_is_noop(self):
        engine, server = self._fleet_node()
        server.submit(_req(0))
        server.resume()
        engine.run_until(5.0)
        assert server.metrics.completed == 1


class TestNodeLifecycle:
    def _fleet(self, n=2, cores=2, seed=5):
        engine = Engine()
        app = get_app(APP)
        nodes = [ClusterNode(engine, i, app, cores, seed=seed) for i in range(n)]
        return engine, nodes

    def test_crash_restart_recover_cycle(self):
        engine, nodes = self._fleet()
        plan = _crash_plan(node=1, time=2.0, down=2.0, recovery_time=1.0)
        disp = Dispatcher(nodes, RoundRobinRouter())
        life = NodeLifecycle(engine, nodes, plan, disp)
        life.start()
        engine.run_until(2.5)
        assert nodes[1].state == DOWN and nodes[1].server.paused
        assert not nodes[1].accepting
        engine.run_until(4.5)
        assert nodes[1].state == RECOVERING and not nodes[1].server.paused
        assert nodes[1].accepting
        engine.run_until(5.5)
        assert nodes[1].state == HEALTHY
        assert life.crashes == 1
        assert life.downtime[1] == pytest.approx(2.0)
        assert life.availability(10.0)[1] == pytest.approx(0.8)
        assert life.availability(10.0)[0] == 1.0

    def test_rack_failure_takes_out_contiguous_range(self):
        engine, nodes = self._fleet(n=4)
        plan = FleetFaultPlan(
            events=(FleetEvent(1.0, "rack.fail", node=1, span=2, duration=1.0),),
        )
        life = NodeLifecycle(engine, nodes, plan, Dispatcher(nodes, RoundRobinRouter()))
        life.start()
        engine.run_until(1.5)
        assert [n.state for n in nodes] == [HEALTHY, DOWN, DOWN, HEALTHY]
        assert life.crashes == 2

    def test_evacuated_requests_redispatch_with_backoff(self):
        engine, nodes = self._fleet()
        plan = _crash_plan(node=0, time=1.0, down=5.0,
                           retry_budget=2, retry_backoff=0.25)
        disp = Dispatcher(nodes, RoundRobinRouter())
        life = NodeLifecycle(engine, nodes, plan, disp)
        life.start()
        # Pin work onto node 0 so the crash catches it in flight.
        long_req = _req(0, work=100.0)
        nodes[0].submit(long_req)
        engine.run_until(2.0)
        assert life.redispatches == 1
        assert long_req.retries == 1
        # Re-dispatch skipped the down node: node 1 took the request.
        assert nodes[1].backlog() + nodes[1].server.metrics.completed >= 1

    def test_retry_budget_exhaustion_drops(self):
        engine, nodes = self._fleet()
        plan = _crash_plan(node=0, time=1.0, down=5.0, retry_budget=0)
        disp = Dispatcher(nodes, RoundRobinRouter())
        life = NodeLifecycle(engine, nodes, plan, disp)
        life.start()
        req = _req(0, work=100.0)
        nodes[0].submit(req)
        engine.run_until(2.0)
        assert life.dropped == 1 and life.redispatches == 0
        assert req.dropped

    def test_drop_in_flight_ignores_budget(self):
        engine, nodes = self._fleet()
        plan = _crash_plan(node=0, time=1.0, down=5.0,
                           retry_budget=5, drop_in_flight=True)
        life = NodeLifecycle(engine, nodes, plan, Dispatcher(nodes, RoundRobinRouter()))
        life.start()
        nodes[0].submit(_req(0, work=100.0))
        engine.run_until(2.0)
        assert life.dropped == 1 and life.redispatches == 0

    def test_finalize_closes_open_downtime(self):
        engine, nodes = self._fleet()
        plan = _crash_plan(node=1, time=1.0, down=100.0)
        life = NodeLifecycle(engine, nodes, plan, Dispatcher(nodes, RoundRobinRouter()))
        life.start()
        engine.run_until(3.0)
        life.finalize(3.0)
        assert life.downtime[1] == pytest.approx(2.0)
        assert life.availability(3.0)[1] == pytest.approx(1.0 / 3.0)

    def test_partition_window_tracked(self):
        engine, nodes = self._fleet()
        plan = FleetFaultPlan(
            events=(FleetEvent(1.0, "telemetry.partition", node=0, duration=2.0),),
        )
        life = NodeLifecycle(engine, nodes, plan, Dispatcher(nodes, RoundRobinRouter()))
        life.start()
        engine.run_until(2.0)
        assert life.is_partitioned(0) and not life.is_partitioned(1)
        engine.run_until(3.5)
        assert not life.is_partitioned(0)
        assert life.partitions == 1


class TestMembershipAwarePowerCap:
    def test_down_node_parks_at_floor_and_budget_redistributes(self):
        engine = Engine()
        app = get_app(APP)
        nodes = [ClusterNode(engine, i, app, 2, seed=5) for i in range(2)]
        budget = fleet_power_budget(2, 2, fraction=0.7)
        coord = PowerCapCoordinator(engine, nodes, budget, window=1.0)
        plan = _crash_plan(node=1, time=2.5, down=3.0, recovery_time=2.0)
        disp = Dispatcher(nodes, RoundRobinRouter())
        life = NodeLifecycle(engine, nodes, plan, disp, coordinator=coord)
        coord.lifecycle = life
        coord.start()
        life.start()
        engine.run_until(2.9)
        # The crash triggered an immediate membership re-apportion.
        win = coord.history[-1]
        assert win.reason == "membership"
        assert win.targets[1] == pytest.approx(coord._idle_floor[1])
        assert win.ceilings[1] == nodes[1].cpu.table.fmin
        # The live node got the remaining budget, more than a half share.
        assert win.targets[0] > budget / 2 * 0.99
        # Restart: the recovering node re-enters at the floor frequency cap.
        engine.run_until(5.9)
        assert nodes[1].state == RECOVERING
        win = coord.history[-1]
        assert win.reason == "membership"
        assert win.ceilings[1] == nodes[1].cpu.table.fmin
        # Full recovery lifts the pin.
        engine.run_until(8.5)
        assert nodes[1].state == HEALTHY
        assert coord.history[-1].ceilings[1] > nodes[1].cpu.table.fmin
        coord.stop()

    def test_partition_freezes_coordinator_energy_reading(self):
        engine = Engine()
        app = get_app(APP)
        nodes = [ClusterNode(engine, i, app, 2, seed=5) for i in range(2)]
        coord = PowerCapCoordinator(
            engine, nodes, fleet_power_budget(2, 2), window=1.0
        )
        plan = FleetFaultPlan(
            events=(FleetEvent(1.5, "telemetry.partition", node=0, duration=2.0),),
        )
        life = NodeLifecycle(engine, nodes, plan, Dispatcher(nodes, RoundRobinRouter()))
        coord.lifecycle = life
        coord.start()
        life.start()
        engine.run_until(3.0)
        # Windows measured inside the partition see zero power for node 0
        # (frozen counter) while node 1 reads normally.
        partitioned = [w for w in coord.history if 1.5 < w.time <= 3.5]
        assert partitioned
        assert all(w.powers[0] == 0.0 for w in partitioned)
        assert all(w.powers[1] > 0.0 for w in partitioned)
        # After the heal the deferred energy lands in one catch-up window.
        engine.run_until(5.0)
        healed = [w for w in coord.history if w.time > 3.5]
        assert healed and healed[0].powers[0] > 0.0
        coord.stop()


class TestChaosDeterminism:
    def _chaos_config(self, **over):
        plan = _crash_plan(node=1, time=2.0, down=2.0, recovery_time=0.5)
        return _config(fault_plan=plan, **over)

    def test_same_seed_same_metrics(self):
        trace = _trace()
        assert _run_json(self._chaos_config(), trace) == \
            _run_json(self._chaos_config(), trace)

    def test_traces_bitwise_identical(self, tmp_path):
        trace = _trace()
        paths = []
        for name in ("a", "b"):
            path = str(tmp_path / f"{name}.trace.jsonl")
            obs = Observability.from_paths(trace_out=path, meta={"seed": 11})
            try:
                ClusterSim(self._chaos_config(), trace, obs=obs).run()
            finally:
                obs.close()
            paths.append(path)
        with open(paths[0], "rb") as fa, open(paths[1], "rb") as fb:
            assert fa.read() == fb.read()
        assert os.path.getsize(paths[0]) > 0

    def test_faultless_plan_matches_plain_fleet_run(self):
        """An absent plan and an empty plan are the same simulation, bit
        for bit — the resilience machinery must not perturb clean runs."""
        trace = _trace()
        plain = _run_json(_config(), trace)
        empty = _run_json(_config(fault_plan=FleetFaultPlan()), trace)
        assert plain == empty

    def test_config_validates_resilience_knobs(self):
        with pytest.raises(ValueError, match="straggler_multiple"):
            _config(straggler_multiple=1.0)
        with pytest.raises(ValueError, match="degraded_penalty"):
            _config(degraded_penalty=1.5)


class TestFailoverAcceptance:
    """The issue's acceptance contrast: with failover the fleet keeps
    meeting the SLA on surviving nodes; the no-failover round-robin
    ablation measurably does not (the dead node's mailbox drains as
    huge-latency completions on restart)."""

    def _run(self, health_aware):
        trace = _trace(duration=16.0, load=0.4, nodes=4, cores=2)
        plan = _crash_plan(node=1, time=4.0, down=6.0, recovery_time=0.5)
        cfg = _config(
            num_nodes=4, routing="round-robin", fault_plan=plan,
            health_aware=health_aware,
        )
        return ClusterSim(cfg, trace).run()

    def test_failover_meets_sla_ablation_does_not(self):
        failover = self._run(None)       # auto: on when a plan is active
        ablation = self._run(False)
        assert failover.fleet.sla_met
        assert not ablation.fleet.sla_met
        assert ablation.fleet.tail_latency > 5 * failover.fleet.tail_latency
        # Failover re-routed the crash victims instead of dropping them.
        assert failover.redispatches > 0
        assert failover.crashes == 1
        assert failover.node_availability[1] < 1.0
        assert failover.fleet_availability < 1.0

    def test_fleet_metrics_surface_resilience_counters(self):
        m = self._run(None)
        d = m.as_dict()
        for key in ("crashes", "dropped_requests", "redispatches",
                    "partitions", "unroutable", "node_availability",
                    "fleet_availability"):
            assert key in d
        assert d["crashes"] == 1


class TestUnroutableFleet:
    def test_all_nodes_down_retries_then_drops(self):
        """A request arriving while every node is down burns its retry
        budget through the unroutable path and is dropped with a trace."""
        engine = Engine()
        app = get_app(APP)
        nodes = [ClusterNode(engine, i, app, 2, seed=5) for i in range(2)]
        plan = FleetFaultPlan(
            events=(
                FleetEvent(1.0, "rack.fail", node=0, span=2, duration=10.0),
            ),
            retry_budget=1, retry_backoff=0.1,
        )
        disp = Dispatcher(nodes, RoundRobinRouter())
        life = NodeLifecycle(engine, nodes, plan, disp)
        disp.on_unroutable = life.handle_unroutable
        life.start()
        engine.run_until(2.0)
        req = _req(0)
        disp.submit(req)
        engine.run_until(5.0)
        assert disp.unroutable >= 2  # first try + the backoff retry
        assert life.dropped == 1
        assert req.dropped
