"""Diurnal RPS traces (stand-in for the Alibaba e-commerce search trace).

The paper drives its evaluation with a one-month RPS recording from an
e-commerce search system (Fig 6), downsampled so the whole pattern plays in
360 s and scaled so the unmanaged tail latency sits near the SLA.  The
recording is not redistributable, so :func:`synthesize_month` generates a
series with the same structural features the paper relies on:

* strong daily harmonic (afternoon peak, early-morning trough),
* weekly modulation (weekend lift, as in e-commerce traffic),
* lognormal multiplicative noise,
* occasional flash-sale spikes.

A :class:`WorkloadTrace` is a piecewise-constant rate function; the arrival
process samples exponential gaps inside each segment, giving an
inhomogeneous Poisson process with exactly the trace's intensity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

__all__ = ["WorkloadTrace", "synthesize_month", "diurnal_trace", "constant_trace"]


@dataclass(frozen=True)
class WorkloadTrace:
    """Piecewise-constant arrival-rate schedule.

    ``rates[i]`` holds between ``edges[i]`` and ``edges[i+1]``;
    ``len(edges) == len(rates) + 1``.  Rates are requests/second.
    """

    edges: np.ndarray
    rates: np.ndarray

    def __post_init__(self) -> None:
        edges = np.asarray(self.edges, dtype=float)
        rates = np.asarray(self.rates, dtype=float)
        if edges.ndim != 1 or rates.ndim != 1 or len(edges) != len(rates) + 1:
            raise ValueError("need len(edges) == len(rates) + 1")
        if np.any(np.diff(edges) <= 0):
            raise ValueError("edges must be strictly increasing")
        if np.any(rates < 0):
            raise ValueError("rates must be non-negative")
        object.__setattr__(self, "edges", edges)
        object.__setattr__(self, "rates", rates)

    # ------------------------------------------------------------------ query

    @property
    def duration(self) -> float:
        """Total trace length in seconds."""
        return float(self.edges[-1] - self.edges[0])

    def rate_at(self, t: float) -> float:
        """Arrival rate at absolute time ``t`` (0 outside the trace)."""
        if t < self.edges[0] or t >= self.edges[-1]:
            return 0.0
        idx = int(np.searchsorted(self.edges, t, side="right")) - 1
        return float(self.rates[idx])

    def mean_rate(self) -> float:
        """Time-weighted mean rate over the trace."""
        widths = np.diff(self.edges)
        return float(np.sum(self.rates * widths) / np.sum(widths))

    def peak_rate(self) -> float:
        return float(self.rates.max())

    def expected_requests(self) -> float:
        """Expected number of arrivals over the full trace."""
        return float(np.sum(self.rates * np.diff(self.edges)))

    # ------------------------------------------------------------- transforms

    def scaled(self, factor: float) -> "WorkloadTrace":
        """Multiply every rate by ``factor`` (the paper's load knob)."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return WorkloadTrace(self.edges.copy(), self.rates * factor)

    def scaled_to_mean(self, target_mean: float) -> "WorkloadTrace":
        """Rescale so the time-weighted mean rate equals ``target_mean``."""
        cur = self.mean_rate()
        if cur <= 0:
            raise ValueError("cannot rescale an all-zero trace")
        return self.scaled(target_mean / cur)

    def scaled_to_peak(self, target_peak: float) -> "WorkloadTrace":
        """Rescale so the peak rate equals ``target_peak``."""
        cur = self.peak_rate()
        if cur <= 0:
            raise ValueError("cannot rescale an all-zero trace")
        return self.scaled(target_peak / cur)

    def downsampled(self, duration: float, num_segments: int) -> "WorkloadTrace":
        """Compress the trace to ``duration`` seconds in ``num_segments``
        equal segments (the paper downsamples one month to 360 s)."""
        if duration <= 0 or num_segments <= 0:
            raise ValueError("duration and num_segments must be positive")
        # Sample the original pattern at segment midpoints.
        src_span = self.duration
        mids = (np.arange(num_segments) + 0.5) / num_segments * src_span + self.edges[0]
        rates = np.array([self.rate_at(m) for m in mids])
        edges = np.linspace(0.0, duration, num_segments + 1)
        return WorkloadTrace(edges, rates)

    def repeat(self, times: int) -> "WorkloadTrace":
        """Concatenate the trace with itself ``times`` times (training runs)."""
        if times <= 0:
            raise ValueError("times must be positive")
        span = self.duration
        widths = np.diff(self.edges)
        rates = np.tile(self.rates, times)
        all_widths = np.tile(widths, times)
        edges = np.concatenate([[self.edges[0]], self.edges[0] + np.cumsum(all_widths)])
        del span
        return WorkloadTrace(edges, rates)

    def segments(self) -> Iterable[tuple]:
        """Yield ``(t_start, t_end, rate)`` triples."""
        for i, r in enumerate(self.rates):
            yield float(self.edges[i]), float(self.edges[i + 1]), float(r)


def synthesize_month(
    rng: np.random.Generator,
    days: int = 30,
    base_rps: float = 100.0,
    daily_amplitude: float = 0.55,
    weekly_amplitude: float = 0.15,
    noise_sigma: float = 0.08,
    spike_probability: float = 0.01,
    spike_magnitude: float = 1.8,
    samples_per_day: int = 24,
) -> WorkloadTrace:
    """Generate a month-long diurnal RPS series at hourly resolution.

    The daily harmonic peaks mid-afternoon and bottoms out around 4 am; a
    weekly harmonic lifts weekends; lognormal noise and rare flash spikes
    roughen the curve like the paper's Fig 6.
    """
    n = days * samples_per_day
    t_hours = np.arange(n) * (24.0 / samples_per_day)
    day_phase = 2 * np.pi * (t_hours / 24.0 - 15.0 / 24.0)  # peak at 15:00
    week_phase = 2 * np.pi * t_hours / (24.0 * 7.0)
    pattern = (
        1.0
        + daily_amplitude * np.cos(day_phase)
        + weekly_amplitude * np.cos(week_phase)
    )
    noise = np.exp(noise_sigma * rng.standard_normal(n))
    spikes = np.where(rng.random(n) < spike_probability, spike_magnitude, 1.0)
    rates = np.maximum(base_rps * 0.05, base_rps * pattern * noise * spikes)
    edges = np.arange(n + 1) * (86400.0 / samples_per_day)
    return WorkloadTrace(edges, rates)


def diurnal_trace(
    rng: np.random.Generator,
    duration: float = 360.0,
    num_segments: int = 120,
    **month_kwargs,
) -> WorkloadTrace:
    """Paper-style evaluation trace: synthesize a month, downsample.

    Returns a ``duration``-second piecewise trace with the month's diurnal
    pattern compressed into it, unscaled (use ``scaled_to_mean`` /
    ``scaled_to_peak`` to hit a target load).
    """
    month = synthesize_month(rng, **month_kwargs)
    return month.downsampled(duration, num_segments)


def constant_trace(rate: float, duration: float) -> WorkloadTrace:
    """A static-RPS trace (what prior work assumes; used for Table 3/Fig 2)."""
    if duration <= 0:
        raise ValueError("duration must be positive")
    return WorkloadTrace(np.array([0.0, duration]), np.array([float(rate)]))
