"""Node lifecycle: interpret a FleetFaultPlan against a live fleet.

:class:`NodeLifecycle` is the fleet-level counterpart of
:class:`~repro.faults.injectors.FaultHarness`: it schedules the plan's
fleet events (crashes, rack failures, telemetry partitions) on the shared
engine, drives each node through ``healthy → down → recovering → healthy``
transitions, arms the plan's per-node single-node fault harnesses, and
accounts downtime so per-node availability falls out of the run.

Crash semantics
---------------
A crash evacuates the node's server (:meth:`~repro.server.server.Server.
evacuate`): in-flight requests are aborted with their runtime stamps
reset, queued ones are popped, and the server is left *paused* — while
down, anything a non-health-aware dispatcher still routes at it piles up
in the queue unserved (the failure mode the no-failover ablation
measures).  Each evacuated request is either dropped-with-trace or
re-dispatched through the fleet dispatcher after an exponential-backoff
delay (``retry_backoff * 2**retries``), up to the plan's retry budget.

A restart resumes the server (draining the mailbox), moves the node to
``recovering`` — during which a power-cap coordinator pins it at the
floor frequency cap — and promotes it back to ``healthy`` after the
plan's ``recovery_time``.  A crash landing mid-recovery bumps a per-node
generation counter so the stale promotion is ignored.

Everything is scheduled from plan data on the shared engine, so two runs
at the same seed replay the identical fault history bit for bit.

Batched-stepping interplay
--------------------------
Under batched fleet stepping (:mod:`repro.cluster.batch`) no lifecycle
code changes: state flips flow through the ``ClusterNode.state`` setter
into the batch's down/degraded masks, ``evacuate()`` fires the server's
reset hook (zeroing the stacked backlog entry), and parked-core writes
land in the stacked frequency rows via the normal core listeners.  Fault
events share ``PRIORITY_CONTROL`` with controller ticks, but every fault
event coinciding with a tick time was scheduled strictly earlier in
simulated time than that tick's reschedule (ticks re-arm one short-time
ahead), so faults pop before ticks under both per-node and fleet-wide
tick tasks — event order, and therefore the trace byte stream, is
identical.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..faults.fleet import FleetFaultPlan
from ..faults.injectors import FaultHarness
from ..sim.engine import Engine
from ..sim.events import PRIORITY_CONTROL
from ..workload.request import Request
from .dispatch import Dispatcher
from .node import DOWN, HEALTHY, RECOVERING, ClusterNode

__all__ = ["NodeLifecycle"]


class NodeLifecycle:
    """Schedule and apply a :class:`FleetFaultPlan` to a running fleet."""

    def __init__(
        self,
        engine: Engine,
        nodes: Sequence[ClusterNode],
        plan: FleetFaultPlan,
        dispatcher: Dispatcher,
        coordinator: Any = None,
        trace: Any = None,
    ) -> None:
        self.engine = engine
        self.nodes = list(nodes)
        self.plan = plan
        self.dispatcher = dispatcher
        self.coordinator = coordinator
        self.trace = trace
        self.harnesses: List[FaultHarness] = []
        self._partition_until: Dict[int, float] = {}
        # Stale-promotion guard: a crash during recovery bumps the node's
        # generation, invalidating the already-scheduled promotion.
        self._recovery_gen = [0] * len(self.nodes)
        self._down_since: Dict[int, float] = {}
        self.downtime = [0.0] * len(self.nodes)
        self.crashes = 0
        self.dropped = 0
        self.redispatches = 0
        self.partitions = 0

    # ----------------------------------------------------------------- control

    def start(self) -> None:
        """Schedule every plan event and arm per-node fault harnesses."""
        node_map = {n.node_id: n for n in self.nodes}
        for node_id, node_plan in self.plan.node_plans:
            node = node_map.get(node_id)
            if node is None or node_plan.is_empty:
                continue
            harness = FaultHarness(
                node_plan,
                self.engine,
                cpu=node.cpu,
                monitor=node.monitor,
                telemetry=node.server.telemetry,
            )
            harness.arm()
            self.harnesses.append(harness)
        for ev in self.plan.events:
            if ev.kind == "node.crash":
                self._schedule_crash(ev.node, ev.time, ev.duration)
            elif ev.kind == "rack.fail":
                for node_id in range(ev.node, ev.node + ev.span):
                    self._schedule_crash(node_id, ev.time, ev.duration)
            elif ev.kind == "telemetry.partition":
                self.engine.schedule_at(
                    ev.time,
                    self._partition,
                    ev.node,
                    ev.duration,
                    priority=PRIORITY_CONTROL,
                )

    def finalize(self, t_end: float) -> None:
        """Close downtime accounting for nodes still down at run end."""
        for node_id, since in list(self._down_since.items()):
            self.downtime[node_id] += max(0.0, t_end - since)
            del self._down_since[node_id]

    def availability(self, t_end: float) -> List[float]:
        """Per-node up-fraction of ``[0, t_end]`` (1.0 = never down)."""
        if t_end <= 0:
            return [1.0] * len(self.nodes)
        return [1.0 - min(d, t_end) / t_end for d in self.downtime]

    def is_partitioned(self, node_id: int) -> bool:
        """Whether the node's sensor messages are currently being lost."""
        until = self._partition_until.get(node_id)
        return until is not None and self.engine.now < until

    # ---------------------------------------------------------------- crashes

    def _schedule_crash(self, node_id: int, time: float, duration: float) -> None:
        if not 0 <= node_id < len(self.nodes):
            return
        self.engine.schedule_at(
            time, self._crash, node_id, duration, priority=PRIORITY_CONTROL
        )

    def _crash(self, node_id: int, duration: float) -> None:
        node = self.nodes[node_id]
        if node.state == DOWN:
            return
        self._recovery_gen[node_id] += 1
        node.state = DOWN
        self.crashes += 1
        now = self.engine.now
        self._down_since[node_id] = now
        evacuated = node.server.evacuate()
        # Park the dead node's cores: a crashed machine draws its idle
        # floor, not whatever frequency its policy last requested.
        node.cpu.set_all_frequencies(node.cpu.table.fmin)
        if self.trace is not None:
            self.trace.emit(
                "node-down",
                t=now,
                node=node_id,
                evacuated=len(evacuated),
                downtime=duration,
            )
        for req in evacuated:
            self._handle_evacuated(req, node_id)
        if self.coordinator is not None:
            self.coordinator.on_membership_change()
        self.engine.schedule_at(
            now + duration, self._restart, node_id, priority=PRIORITY_CONTROL
        )

    def _restart(self, node_id: int) -> None:
        node = self.nodes[node_id]
        if node.state != DOWN:  # pragma: no cover - crash guard keeps one restart
            return
        now = self.engine.now
        since = self._down_since.pop(node_id, None)
        if since is not None:
            self.downtime[node_id] += now - since
        node.state = RECOVERING
        node.server.resume()
        if self.trace is not None:
            self.trace.emit("node-up", t=now, node=node_id)
        if self.coordinator is not None:
            self.coordinator.on_membership_change()
        gen = self._recovery_gen[node_id]
        self.engine.schedule_at(
            now + self.plan.recovery_time,
            self._recovered,
            node_id,
            gen,
            priority=PRIORITY_CONTROL,
        )

    def _recovered(self, node_id: int, gen: int) -> None:
        node = self.nodes[node_id]
        if gen != self._recovery_gen[node_id] or node.state != RECOVERING:
            return
        node.state = HEALTHY
        if self.trace is not None:
            self.trace.emit("node-recovered", t=self.engine.now, node=node_id)
        if self.coordinator is not None:
            self.coordinator.on_membership_change()

    # ------------------------------------------------------------- evacuation

    def _handle_evacuated(self, req: Request, from_node: Optional[int]) -> None:
        if self.plan.drop_in_flight or req.retries >= self.plan.retry_budget:
            req.dropped = True
            self.dropped += 1
            if self.trace is not None:
                self.trace.emit(
                    "request-drop",
                    t=self.engine.now,
                    req_id=req.req_id,
                    node=from_node,
                    retries=req.retries,
                )
            return
        delay = self.plan.retry_backoff * (2.0 ** req.retries)
        req.retries += 1
        self.redispatches += 1
        if self.trace is not None:
            self.trace.emit(
                "redispatch",
                t=self.engine.now,
                req_id=req.req_id,
                node=from_node,
                retries=req.retries,
                delay=delay,
            )
        self.engine.schedule_after(
            delay, self.dispatcher.submit, req, priority=PRIORITY_CONTROL
        )

    def handle_unroutable(self, req: Request) -> None:
        """Dispatcher callback: no live node for ``req`` — retry or drop."""
        self._handle_evacuated(req, None)

    # ------------------------------------------------------------- partitions

    def _partition(self, node_id: int, duration: float) -> None:
        now = self.engine.now
        self._partition_until[node_id] = now + duration
        self.partitions += 1
        if self.trace is not None:
            self.trace.emit(
                "telemetry-partition", t=now, node=node_id, duration=duration
            )
