"""Control-plane (bus) fault plans: lossy sensor/actuator messaging.

A :class:`BusFaultPlan` describes how the in-process control bus
(:mod:`repro.control.bus`) misbehaves, with the same contract as
:class:`~repro.faults.plan.FaultPlan` and
:class:`~repro.faults.fleet.FleetFaultPlan`: *pure data, seed-
deterministic, bitwise replayable*.  The plan composes

* **per-direction link faults** (:class:`LinkFaults`) — independent
  drop / delay / duplicate / reorder probabilities for each of the three
  message directions (``sensor`` readings node→controller, ``command``
  actuations controller→node, ``ack`` confirmations node→controller),
  each direction drawing from its own derived RNG stream so the sensor
  path's fault history never depends on the command path's, and
* **scheduled partitions** (:class:`BusEvent`) — windows during which a
  direction (or ``all`` of them) delivers nothing, the message-layer
  analogue of :data:`~repro.faults.fleet.FLEET_FAULT_KINDS`'s
  ``telemetry.partition``.

The interpreter (:class:`repro.control.bus.BusFaultInjector`) draws a
fixed number of uniforms per published message, so the fault stream of a
run depends only on ``(plan, message sequence)`` — two runs of the same
plan against the same workload are bitwise identical.

An empty plan (``BusFaultPlan()``) is the documented no-op: the bus skips
building the injector entirely, so a faultless bus-mode run is bitwise
identical to the direct-call runtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

__all__ = [
    "BUS_DIRECTIONS",
    "BUS_FAULT_KINDS",
    "LinkFaults",
    "BusEvent",
    "BusFaultPlan",
    "standard_bus_plan",
]

#: Message directions a plan can target.
BUS_DIRECTIONS = ("sensor", "command", "ack")

#: Scheduled-event kinds understood by the bus fault injector.
BUS_FAULT_KINDS = ("bus.partition",)


@dataclass(frozen=True)
class LinkFaults:
    """Stochastic fault rates for one message direction.

    ``delay`` is the extra delivery latency (seconds) applied to delayed,
    reordered and duplicated copies; a *reordered* message is simply one
    delayed past its successor, which is how real reordering manifests to
    a sequence-numbered receiver.
    """

    drop_prob: float = 0.0
    delay_prob: float = 0.0
    #: Extra delivery latency for delayed/reordered/duplicate copies (s).
    delay: float = 0.05
    duplicate_prob: float = 0.0
    reorder_prob: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_prob", "delay_prob", "duplicate_prob", "reorder_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p!r}")
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay!r}")

    @property
    def is_empty(self) -> bool:
        return (
            self.drop_prob == 0.0
            and self.delay_prob == 0.0
            and self.duplicate_prob == 0.0
            and self.reorder_prob == 0.0
        )

    def payload(self) -> tuple:
        """Plain-data tuple for content-addressed cache keys."""
        return (
            self.drop_prob,
            self.delay_prob,
            self.delay,
            self.duplicate_prob,
            self.reorder_prob,
        )


@dataclass(frozen=True)
class BusEvent:
    """One scheduled bus partition: a ``[time, time + duration)`` window."""

    time: float
    duration: float
    #: ``sensor`` | ``command`` | ``ack`` | ``all``.
    direction: str = "all"
    kind: str = "bus.partition"

    def __post_init__(self) -> None:
        if self.kind not in BUS_FAULT_KINDS:
            raise ValueError(
                f"unknown bus fault kind {self.kind!r}; known: {BUS_FAULT_KINDS}"
            )
        if self.direction not in BUS_DIRECTIONS + ("all",):
            raise ValueError(
                f"unknown bus direction {self.direction!r}; "
                f"known: {BUS_DIRECTIONS + ('all',)}"
            )
        if self.time < 0:
            raise ValueError(f"bus fault time must be >= 0, got {self.time!r}")
        if self.duration <= 0:
            raise ValueError(
                f"bus fault duration must be > 0, got {self.duration!r} "
                "(partitions are windows)"
            )

    @property
    def end(self) -> float:
        return self.time + self.duration

    def hits(self, direction: str) -> bool:
        return self.direction == "all" or self.direction == direction


@dataclass(frozen=True)
class BusFaultPlan:
    """A reproducible control-bus fault scenario (pure data)."""

    sensor: LinkFaults = field(default_factory=LinkFaults)
    command: LinkFaults = field(default_factory=LinkFaults)
    ack: LinkFaults = field(default_factory=LinkFaults)
    events: Tuple[BusEvent, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for name in BUS_DIRECTIONS:
            link = getattr(self, name)
            if not isinstance(link, LinkFaults):
                raise TypeError(
                    f"{name} must be LinkFaults, got {type(link).__name__}"
                )
        object.__setattr__(
            self,
            "events",
            tuple(sorted(self.events, key=lambda e: (e.time, e.direction, e.kind))),
        )

    # ------------------------------------------------------------------ views

    @property
    def is_empty(self) -> bool:
        """True when interpreting this plan would be a guaranteed no-op."""
        return not self.events and all(
            getattr(self, d).is_empty for d in BUS_DIRECTIONS
        )

    def link(self, direction: str) -> LinkFaults:
        if direction not in BUS_DIRECTIONS:
            raise KeyError(
                f"unknown bus direction {direction!r}; known: {BUS_DIRECTIONS}"
            )
        return getattr(self, direction)

    def partitions(self, direction: str) -> Tuple[Tuple[float, float], ...]:
        """``(start, end)`` partition windows covering ``direction``."""
        return tuple(
            (e.time, e.end) for e in self.events if e.hits(direction)
        )

    def payload(self) -> tuple:
        """Plain-data value for content-addressed cache keys."""
        return (
            self.seed,
            tuple(getattr(self, d).payload() for d in BUS_DIRECTIONS),
            tuple((e.time, e.duration, e.direction, e.kind) for e in self.events),
        )


def standard_bus_plan(
    intensity: float,
    duration: float,
    *,
    seed: int = 0,
    long_time: float = 1.0,
) -> BusFaultPlan:
    """The canonical lossy-bus scenario the ``control-soak`` experiment sweeps.

    ``intensity`` scales both the partition lengths and the stochastic
    per-message fault rates; the deterministic backbone — one all-direction
    partition across the workload's diurnal peak plus an earlier
    sensor-only partition — is included whenever ``intensity > 0``.
    ``intensity == 0`` returns the empty plan (a fault-free bus run,
    bitwise identical to the direct-call runtime).

    The all-direction partition is what separates degraded-mode control
    from the ablation: a controller that detects the stale window
    escalates to the safe governor and rides out the peak at turbo, while
    a naive controller holds whatever low-power action it chose during the
    preceding trough and blows the SLA.
    """
    if intensity < 0:
        raise ValueError(f"intensity must be >= 0, got {intensity!r}")
    if duration <= 0:
        raise ValueError(f"duration must be > 0, got {duration!r}")
    if long_time <= 0:
        raise ValueError(f"long_time must be > 0, got {long_time!r}")
    if intensity == 0.0:
        return BusFaultPlan(seed=seed)
    scale = min(intensity, 1.0)
    # Delayed copies land after the next on-time message so the receiver
    # observes genuine reordering (the successor overtakes them).
    delay = 1.5 * long_time
    noisy = LinkFaults(
        drop_prob=min(0.20 * intensity, 0.9),
        delay_prob=min(0.10 * intensity, 0.9),
        delay=delay,
        duplicate_prob=min(0.10 * intensity, 0.5),
        reorder_prob=min(0.08 * intensity, 0.5),
    )
    events = (
        # An early sensor-only partition: the controller goes blind while
        # its commands still land (exercises stale-hold without escalation
        # when short, with escalation when intensity stretches it).
        BusEvent(0.12 * duration, 0.08 * duration * scale, direction="sensor"),
        # The main outage: both directions dark across the diurnal peak.
        # The evaluation traces put their peak around 70% of the run, so
        # the window opens in the preceding trough (freezing a low-power
        # action in an undefended controller) and stays dark through the
        # peak itself at any intensity >~ 0.5.
        BusEvent(0.60 * duration, 0.25 * duration * scale, direction="all"),
    )
    return BusFaultPlan(
        sensor=noisy,
        command=noisy,
        ack=LinkFaults(drop_prob=min(0.15 * intensity, 0.9), delay=delay),
        events=events,
        seed=seed,
    )
