"""First-order optimizers over :class:`~repro.nn.layers.Parameter` lists."""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


def clip_grad_norm(params: List[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clip norm (useful for logging training stability).
    """
    total = 0.0
    for p in params:
        total += float(np.sum(p.grad * p.grad))
    norm = float(np.sqrt(total))
    if norm > max_norm > 0.0:
        scale = max_norm / (norm + 1e-12)
        for p in params:
            p.grad *= scale
    return norm


class Optimizer:
    """Base: step over a fixed parameter list."""

    def __init__(self, params: List[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.params = list(params)
        self.lr = float(lr)

    def step(self) -> None:
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    # ------------------------------------------------------------- persistence

    def state_dict(self) -> Dict:
        """Snapshot of the optimizer's slot state (momentum, moments, ...).

        Slots are stored positionally (aligned with ``self.params``), since
        the ``id()`` keys used internally do not survive a process restart.
        """
        raise NotImplementedError

    def load_state_dict(self, state: Dict) -> None:
        raise NotImplementedError

    def _check_slots(self, slots: List) -> None:
        if len(slots) != len(self.params):
            raise ValueError(
                f"optimizer snapshot has {len(slots)} parameter slots, "
                f"this optimizer has {len(self.params)}"
            )


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(
        self, params: List[Parameter], lr: float = 1e-2, momentum: float = 0.0
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.momentum = momentum
        self._vel: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for p in self.params:
            if self.momentum > 0.0:
                v = self._vel.get(id(p))
                if v is None:
                    v = np.zeros_like(p.data)
                    self._vel[id(p)] = v
                v *= self.momentum
                v -= self.lr * p.grad
                p.data += v
            else:
                p.data -= self.lr * p.grad

    def state_dict(self) -> Dict:
        return {
            "lr": self.lr,
            "momentum": self.momentum,
            "velocity": [
                None if (v := self._vel.get(id(p))) is None else v.copy()
                for p in self.params
            ],
        }

    def load_state_dict(self, state: Dict) -> None:
        self._check_slots(state["velocity"])
        self.lr = float(state["lr"])
        self.momentum = float(state["momentum"])
        self._vel = {
            id(p): np.array(v, dtype=np.float64)
            for p, v in zip(self.params, state["velocity"])
            if v is not None
        }


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with bias correction.

    The paper trains its DDPG networks with default Adam settings; the same
    defaults are used here.
    """

    def __init__(
        self,
        params: List[Parameter],
        lr: float = 1e-3,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.b1, self.b2 = b1, b2
        self.eps = eps
        self.weight_decay = weight_decay
        self.t = 0
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self.t += 1
        b1t = 1.0 - self.b1**self.t
        b2t = 1.0 - self.b2**self.t
        for p in self.params:
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m = self._m.get(id(p))
            if m is None:
                m = np.zeros_like(p.data)
                v = np.zeros_like(p.data)
                self._m[id(p)], self._v[id(p)] = m, v
            else:
                v = self._v[id(p)]
            m *= self.b1
            m += (1.0 - self.b1) * g
            v *= self.b2
            v += (1.0 - self.b2) * g * g
            p.data -= self.lr * (m / b1t) / (np.sqrt(v / b2t) + self.eps)

    def state_dict(self) -> Dict:
        return {
            "lr": self.lr,
            "betas": (self.b1, self.b2),
            "eps": self.eps,
            "weight_decay": self.weight_decay,
            "t": self.t,
            "m": [
                None if (m := self._m.get(id(p))) is None else m.copy()
                for p in self.params
            ],
            "v": [
                None if (v := self._v.get(id(p))) is None else v.copy()
                for p in self.params
            ],
        }

    def load_state_dict(self, state: Dict) -> None:
        self._check_slots(state["m"])
        self._check_slots(state["v"])
        self.lr = float(state["lr"])
        self.b1, self.b2 = (float(b) for b in state["betas"])
        self.eps = float(state["eps"])
        self.weight_decay = float(state["weight_decay"])
        self.t = int(state["t"])
        self._m = {
            id(p): np.array(m, dtype=np.float64)
            for p, m in zip(self.params, state["m"])
            if m is not None
        }
        self._v = {
            id(p): np.array(v, dtype=np.float64)
            for p, v in zip(self.params, state["v"])
            if v is not None
        }
