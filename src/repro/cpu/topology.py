"""CPU package: a socket of cores sharing a DVFS table and power model.

The paper deploys worker threads on socket 0 and measures that socket's RAPL
domain; here a :class:`Cpu` is one such socket.  Multi-socket layouts are a
list of Cpus (see :func:`dual_socket`).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..sim.engine import Engine
from .core import Core
from .dvfs import DEFAULT_TABLE, FrequencyTable
from .power import DEFAULT_POWER_MODEL, PowerModel

__all__ = ["Cpu", "dual_socket"]

#: Below this core count the batched DVFS path runs a tuned scalar loop:
#: numpy's per-ufunc dispatch overhead (~0.5 us/call) beats its throughput
#: win for small vectors, and most simulated sockets have 4-20 cores.
#: Both paths are bit-for-bit identical (tests assert it).
SCALAR_BATCH_CUTOFF = 16


class Cpu:
    """A socket of ``num_cores`` DVFS-capable cores.

    Parameters
    ----------
    engine:
        Simulation engine (shared clock).
    num_cores:
        Cores in this package.
    table:
        DVFS table shared by all cores (per-core frequency is independent —
        the 5218R exposes per-core P-states).
    power_model:
        Analytic power model; the package constant is metered here.
    """

    def __init__(
        self,
        engine: Engine,
        num_cores: int,
        table: FrequencyTable = DEFAULT_TABLE,
        power_model: PowerModel = DEFAULT_POWER_MODEL,
    ) -> None:
        if num_cores <= 0:
            raise ValueError(f"num_cores must be positive, got {num_cores}")
        self.engine = engine
        self.table = table
        self.power_model = power_model
        self.cores: List[Core] = [
            Core(engine, i, table, power_model) for i in range(num_cores)
        ]
        self._created_at = engine.now
        # Listener-synced mirror of per-core frequencies plus scratch
        # buffers for the batched (vector-quantised) set_frequencies path.
        self._freqs = np.full(num_cores, table.fmax)
        self._apply_buf = np.empty(num_cores)
        for core in self.cores:
            core.add_frequency_listener(self._note_freq_change)

    def _note_freq_change(self, core: Core, old: float, new: float) -> None:
        self._freqs[core.core_id] = new

    # ------------------------------------------------------------------ sizes

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    def __len__(self) -> int:
        return len(self.cores)

    def __getitem__(self, idx: int) -> Core:
        return self.cores[idx]

    def __iter__(self):
        return iter(self.cores)

    # ----------------------------------------------------------------- control

    def set_all_frequencies(self, freq: float) -> None:
        """Set every core to ``freq`` (quantised)."""
        for core in self.cores:
            core.set_frequency(freq)

    def set_frequencies(
        self, freqs: Sequence[float], count: Optional[int] = None
    ) -> np.ndarray:
        """Batched per-core frequency assignment, quantised vector-wise.

        With ``count=None`` (historic API) ``len(freqs)`` must equal the
        core count; with ``count=k`` only ``cores[:k]`` are driven from
        ``freqs[:k]`` (the thread controller scales worker cores only).

        Only cores whose quantised level actually changes are touched, so a
        1 ms tick that moves two of twenty cores costs two DVFS writes, not
        twenty no-op calls.  Quantisation runs as one numpy pass above
        :data:`SCALAR_BATCH_CUTOFF` cores and as a tuned scalar loop below
        it (identical results; numpy per-call overhead loses on short
        vectors).  Returns the applied (quantised) frequencies for
        ``cores[:k]`` in a buffer that is *reused across calls* — copy to
        retain.

        When fault injection has wrapped a core's ``set_frequency`` (an
        instance-level override), the batched fast path would change how
        many faulted writes the injector sees; in that case every core gets
        its historic one-call-per-core write with the raw frequency.
        """
        cores = self.cores
        n = len(cores) if count is None else int(count)
        if count is None:
            if len(freqs) != len(cores):
                raise ValueError(
                    f"expected {len(cores)} frequencies, got {len(freqs)}"
                )
        elif not 0 <= n <= len(cores) or len(freqs) < n:
            raise ValueError(
                f"count must be in 0..{len(cores)} with len(freqs) >= count"
            )
        applied = self._apply_buf[:n]
        if n <= SCALAR_BATCH_CUTOFF:
            vals = freqs.tolist() if isinstance(freqs, np.ndarray) else freqs
            quantize = self.table.quantize
            for i in range(n):
                c = cores[i]
                if "set_frequency" in c.__dict__:
                    # Fault injection wrapped this core's set_frequency: keep
                    # the historic one-raw-write-per-call so the injector sees
                    # the same call count and RNG draws.
                    applied[i] = c.set_frequency(float(vals[i]))
                    continue
                q = quantize(vals[i])
                applied[i] = q
                if q != c._freq:
                    c.set_frequency(q, quantize=False)
            return applied
        if any("set_frequency" in c.__dict__ for c in cores[:n]):
            # Preserve per-call fault-injection semantics (RNG draws, counts).
            for i in range(n):
                applied[i] = cores[i].set_frequency(float(freqs[i]))
            return applied
        f = np.asarray(freqs, dtype=float)
        self.table.quantize_into(f[:n], applied)
        for i in np.nonzero(applied != self._freqs[:n])[0]:
            cores[i].set_frequency(float(applied[i]), quantize=False)
        return applied

    # ------------------------------------------------------------------ meters

    def frequencies(self) -> np.ndarray:
        """Current per-core frequencies (GHz), as a fresh copy."""
        return self._freqs.copy()

    def busy_mask(self) -> np.ndarray:
        """Boolean per-core busy flags."""
        return np.array([c.busy for c in self.cores])

    def busy_count(self) -> int:
        """Number of cores currently executing a request."""
        return sum(1 for c in self.cores if c.busy)

    def utilization(self) -> float:
        """Instantaneous fraction of busy cores."""
        return self.busy_count() / len(self.cores)

    def energy_joules(self) -> float:
        """Socket energy: all cores + package constant since construction."""
        core_e = sum(c.energy_joules() for c in self.cores)
        pkg_e = self.power_model.package_watts * (self.engine.now - self._created_at)
        return core_e + pkg_e

    def power_watts(self) -> float:
        """Instantaneous socket power draw (W)."""
        return self.power_model.package_watts + sum(c.power_watts() for c in self.cores)

    def total_switches(self) -> int:
        """Total DVFS transitions across all cores."""
        return sum(c.switch_count for c in self.cores)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cpu(cores={len(self.cores)}, table={self.table.fmin}-{self.table.turbo} GHz)"


def dual_socket(
    engine: Engine,
    cores_per_socket: int,
    table: FrequencyTable = DEFAULT_TABLE,
    power_model: PowerModel = DEFAULT_POWER_MODEL,
) -> List[Cpu]:
    """The paper's 2-socket layout: workers on socket 0, support on socket 1."""
    return [
        Cpu(engine, cores_per_socket, table, power_model),
        Cpu(engine, cores_per_socket, table, power_model),
    ]
