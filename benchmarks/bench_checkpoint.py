"""Checkpoint save/load micro-benchmarks.

Times one full learner snapshot (networks, targets, optimizer slots,
replay pool, RNG state) through the atomic ``CheckpointManager`` path —
the cost a training run pays per autosave.  The budget argument mirrors
§5.5's overhead case: with a 1 s DRL interval and per-episode autosaves,
a snapshot costing tens of milliseconds is invisible.
"""

import numpy as np

from repro.checkpoint import CheckpointManager
from repro.core.agent import DeepPowerAgent, default_ddpg_config
from repro.sim import RngRegistry


def _warmed_agent(replay_items=2000):
    """An agent with a realistically filled replay pool."""
    agent = DeepPowerAgent(
        RngRegistry(7).get("agent"), default_ddpg_config(warmup=8, batch_size=16)
    )
    env = np.random.default_rng(0)
    for _ in range(replay_items):
        s = env.random(8)
        a = agent.act(s, explore=True)
        agent.observe(s, a, -float(env.random()), env.random(8))
    agent.update()
    return agent


def test_checkpoint_save_bench(benchmark, emit, tmp_path):
    agent = _warmed_agent()
    mgr = CheckpointManager(str(tmp_path), keep_last=2)
    state = {"agent": agent.state_dict()}

    path = benchmark(lambda: mgr.save(state, step=1))

    import os

    size_kb = os.path.getsize(path) / 1024
    emit(
        "checkpoint save",
        f"snapshot size: {size_kb:.1f} KiB "
        f"(2000-transition replay pool + 4 networks + optimizer slots)",
    )
    # an autosave must stay negligible next to a 1 s DRL interval
    assert benchmark.stats.stats.mean < 0.25


def test_checkpoint_load_bench(benchmark, emit, tmp_path):
    agent = _warmed_agent()
    mgr = CheckpointManager(str(tmp_path), keep_last=2)
    mgr.save({"agent": agent.state_dict()}, step=1)

    record = benchmark(mgr.load_latest)

    assert record is not None and record.step == 1
    # the restored snapshot is accepted by a fresh agent
    other = DeepPowerAgent(
        RngRegistry(9).get("agent"), default_ddpg_config(warmup=8, batch_size=16)
    )
    other.load_state_dict(record.state["agent"])
    s = np.random.default_rng(1).random(8)
    np.testing.assert_array_equal(
        other.act(s, explore=False), agent.act(s, explore=False)
    )
    emit(
        "checkpoint load",
        f"load+verify mean: {benchmark.stats.stats.mean * 1e3:.2f} ms",
    )
    assert benchmark.stats.stats.mean < 0.25
