"""Open-loop request sources driving the latency-critical server.

Tailbench's evaluation methodology (and the paper's) uses *open-loop* load:
clients issue requests on a schedule independent of server progress, so
queueing delay feeds directly into tail latency instead of throttling the
client.  :class:`OpenLoopSource` implements an inhomogeneous Poisson process
over a :class:`~repro.workload.trace.WorkloadTrace` by sampling exponential
gaps within each piecewise-constant segment (exact, no thinning needed).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from ..sim.engine import Engine
from .request import Request
from .service_time import ServiceModel
from .trace import WorkloadTrace

__all__ = ["OpenLoopSource"]


class OpenLoopSource:
    """Generates requests along a rate trace and submits them to a sink.

    Parameters
    ----------
    engine:
        Simulation engine.
    trace:
        Piecewise-constant arrival-rate schedule (absolute times).
    service:
        Work/feature sampler for generated requests.
    sla:
        SLA stamped on each request, seconds.
    sink:
        Callable receiving each :class:`Request` (usually ``Server.submit``).
    rng:
        Dedicated random stream.
    jitter:
        If > 0, deterministic arrivals instead of Poisson are NOT supported;
        reserved for future closed-loop modes.
    """

    def __init__(
        self,
        engine: Engine,
        trace: WorkloadTrace,
        service: ServiceModel,
        sla: float,
        sink: Callable[[Request], None],
        rng: np.random.Generator,
    ) -> None:
        self.engine = engine
        self.trace = trace
        self.service = service
        self.sla = float(sla)
        self.sink = sink
        self.rng = rng
        self.generated = 0
        self._next_id = 0
        self._done = False
        self._on_done: Optional[Callable[[], None]] = None

    # ----------------------------------------------------------------- control

    def start(self) -> None:
        """Begin generating arrivals at the trace start."""
        first = self._draw_next_arrival(max(self.engine.now, float(self.trace.edges[0])))
        if first is None:
            self._finish()
        else:
            self.engine.schedule_at(first, self._arrive, first)

    def on_done(self, fn: Callable[[], None]) -> None:
        """Register a callback fired when the trace is exhausted."""
        self._on_done = fn
        if self._done:
            fn()

    @property
    def done(self) -> bool:
        return self._done

    # ---------------------------------------------------------------- internal

    def _arrive(self, t: float) -> None:
        work, feats = self.service.sample(self.rng)
        req = Request(
            req_id=self._next_id,
            arrival_time=t,
            work=float(work),
            features=feats,
            sla=self.sla,
        )
        self._next_id += 1
        self.generated += 1
        self.sink(req)
        nxt = self._draw_next_arrival(t)
        if nxt is None:
            self._finish()
        else:
            self.engine.schedule_at(nxt, self._arrive, nxt)

    def _finish(self) -> None:
        self._done = True
        if self._on_done is not None:
            self._on_done()

    def _draw_next_arrival(self, after: float) -> Optional[float]:
        """Next event time of the inhomogeneous Poisson process after ``after``.

        Walks segments: in a segment with rate ``r`` the residual gap is
        exponential with mean ``1/r``; if the candidate lands beyond the
        segment end, the process restarts (memorylessness) at the next
        segment boundary.
        """
        edges = self.trace.edges
        rates = self.trace.rates
        t = after
        end = float(edges[-1])
        while t < end:
            idx = int(np.searchsorted(edges, t, side="right")) - 1
            idx = max(idx, 0)
            rate = float(rates[idx])
            seg_end = float(edges[idx + 1])
            if rate <= 0.0:
                t = seg_end
                continue
            gap = self.rng.exponential(1.0 / rate)
            candidate = t + gap
            if candidate <= seg_end:
                return candidate
            t = seg_end
        return None
