"""Determinism + caching tests for the grid executor (repro.parallel.grid).

The load-bearing guarantee of ISSUE 3: ``run_grid(specs, jobs=N)`` is
*bitwise identical* to the serial run — same metrics floats, same extras
arrays — because every cell rebuilds its world (engine, RNG registry,
server) from the spec alone.
"""

import multiprocessing

import numpy as np
import pytest

from repro.parallel import RunSpec, RunResultCache, run_grid, shutdown_pools
from repro.parallel.grid import EXTRAS_COLLECTORS, execute_run_spec
from repro.workload.trace import constant_trace

EXTRAS = ("worker_completed", "final_frequencies", "event_count")

_HAS_FORK = "fork" in multiprocessing.get_all_start_methods()


def _specs(duration=1.5):
    specs = []
    for app in ("xapian", "moses"):
        for policy in ("baseline", "gemini"):
            specs.append(
                RunSpec(
                    app=app,
                    policy=policy,
                    trace=constant_trace(120.0, duration),
                    num_cores=4,
                    seed=11,
                    extras=EXTRAS,
                    label="grid-test",
                )
            )
    return specs


def _assert_outcomes_bitwise_equal(a_list, b_list):
    assert len(a_list) == len(b_list)
    for a, b in zip(a_list, b_list):
        assert a.ok and b.ok
        # RunMetrics is a dataclass of floats/ints: == is exact, not approx.
        assert a.metrics == b.metrics
        assert a.extras["event_count"] == b.extras["event_count"]
        assert np.array_equal(a.extras["worker_completed"], b.extras["worker_completed"])
        assert np.array_equal(
            a.extras["final_frequencies"], b.extras["final_frequencies"]
        )


class TestRunSpec:
    def test_cache_payload_tracks_inputs(self):
        from repro.parallel import content_key

        base = _specs()[0]
        same = _specs()[0]
        # Payloads hold trace ndarrays, so compare their content addresses.
        assert content_key(base.cache_payload()) == content_key(same.cache_payload())
        for changed in (
            RunSpec(**{**_kw(base), "seed": 12}),
            RunSpec(**{**_kw(base), "trace": constant_trace(121.0, 1.5)}),
            RunSpec(**{**_kw(base), "label": "other"}),
            RunSpec(**{**_kw(base), "policy_kwargs": (("use_turbo", False),)}),
        ):
            assert content_key(changed.cache_payload()) != content_key(
                base.cache_payload()
            )

    def test_unknown_policy_raises(self):
        spec = RunSpec(**{**_kw(_specs()[0]), "policy": "nope"})
        with pytest.raises(KeyError, match="unknown grid policy"):
            execute_run_spec(spec)

    def test_unknown_extras_collector_raises(self):
        spec = RunSpec(**{**_kw(_specs()[0]), "extras": ("bogus",)})
        with pytest.raises(KeyError, match="unknown extras collector"):
            execute_run_spec(spec)

    def test_extras_registry_names(self):
        assert set(EXTRAS) <= set(EXTRAS_COLLECTORS)


def _kw(spec: RunSpec) -> dict:
    return {
        "app": spec.app,
        "policy": spec.policy,
        "trace": spec.trace,
        "num_cores": spec.num_cores,
        "seed": spec.seed,
        "num_workers": spec.num_workers,
        "policy_kwargs": spec.policy_kwargs,
        "agent_path": spec.agent_path,
        "agent_seed": spec.agent_seed,
        "extras": spec.extras,
        "label": spec.label,
    }


class TestGridDeterminism:
    @pytest.mark.skipif(not _HAS_FORK, reason="fork start method unavailable")
    def test_jobs4_bitwise_identical_to_serial(self):
        specs = _specs()
        serial = run_grid(specs, jobs=1, warmup=None)
        fanned = run_grid(specs, jobs=4, warmup=None)
        _assert_outcomes_bitwise_equal(serial, fanned)

    def test_serial_rerun_bitwise_identical(self):
        specs = _specs(duration=1.0)[:2]
        a = run_grid(specs, jobs=1, warmup=None)
        b = run_grid(specs, jobs=1, warmup=None)
        _assert_outcomes_bitwise_equal(a, b)


@pytest.mark.skipif(not _HAS_FORK, reason="fork start method unavailable")
class TestGridPoolReuse:
    """ISSUE 8: whole run_grid invocations share one persistent pool."""

    @pytest.fixture(autouse=True)
    def _fresh_registry(self):
        shutdown_pools()
        yield
        shutdown_pools()

    def test_consecutive_grids_fork_at_most_once_per_worker(self):
        specs = _specs(duration=0.8)
        first = run_grid(specs, jobs=2, warmup=None)
        second = run_grid(specs, jobs=2, warmup=None)
        for outs in (first, second):
            stats = next(o.pool_stats for o in outs if o.pool_stats)
            assert stats["workers"] == 2
            assert stats["forks"] == 2  # never re-forked
        stats2 = next(o.pool_stats for o in second if o.pool_stats)
        assert stats2["map_calls"] == 2
        assert stats2["reused_maps"] == 1
        assert stats2["tasks"] == 2 * len(specs)
        _assert_outcomes_bitwise_equal(first, second)

    def test_serial_and_cached_outcomes_have_no_pool_stats(self, tmp_path):
        specs = _specs(duration=0.8)[:2]
        serial = run_grid(specs, jobs=1, warmup=None)
        assert all(o.pool_stats is None for o in serial)
        cache = RunResultCache(root=str(tmp_path))
        run_grid(specs, jobs=2, cache=cache, warmup=None)
        warm = run_grid(specs, jobs=2, cache=cache, warmup=None)
        assert all(o.from_cache and o.pool_stats is None for o in warm)


class TestGridCache:
    def test_cold_then_warm_identical(self, tmp_path):
        cache = RunResultCache(root=str(tmp_path))
        specs = _specs(duration=1.0)[:2]
        cold = run_grid(specs, jobs=1, cache=cache, warmup=None)
        assert cache.hits == 0 and cache.misses == len(specs)
        assert all(not o.from_cache for o in cold)

        warm = run_grid(specs, jobs=1, cache=cache, warmup=None)
        assert cache.hits == len(specs)
        assert all(o.from_cache for o in warm)
        _assert_outcomes_bitwise_equal(cold, warm)

    @pytest.mark.skipif(not _HAS_FORK, reason="fork start method unavailable")
    def test_warm_cache_matches_parallel_cold(self, tmp_path):
        cache = RunResultCache(root=str(tmp_path))
        specs = _specs(duration=1.0)[:3]
        cold = run_grid(specs, jobs=2, cache=cache, warmup=None)
        warm = run_grid(specs, jobs=2, cache=cache, warmup=None)
        _assert_outcomes_bitwise_equal(cold, warm)

    def test_errors_are_not_cached(self, tmp_path):
        cache = RunResultCache(root=str(tmp_path))
        bad = RunSpec(
            app="no-such-app",
            policy="baseline",
            trace=constant_trace(50.0, 0.5),
            num_cores=2,
            seed=1,
        )
        (out,) = run_grid([bad], jobs=1, cache=cache, warmup=None)
        assert not out.ok
        assert not cache.contains(cache.key(bad.cache_payload()))


class TestGridFailureIsolation:
    @pytest.mark.skipif(not _HAS_FORK, reason="fork start method unavailable")
    def test_one_bad_cell_does_not_kill_siblings(self):
        good = _specs(duration=0.8)[:2]
        bad = RunSpec(
            app="no-such-app",
            policy="baseline",
            trace=constant_trace(50.0, 0.5),
            num_cores=2,
            seed=1,
        )
        outs = run_grid([good[0], bad, good[1]], jobs=2, warmup=None)
        assert outs[0].ok and outs[2].ok
        assert not outs[1].ok
        assert "no-such-app" in outs[1].error or "KeyError" in outs[1].error
        with pytest.raises(RuntimeError, match="grid cell"):
            outs[1].unwrap()
        # Spec order is preserved regardless of which worker finished first.
        assert [o.spec.app for o in outs] == [good[0].app, "no-such-app", good[1].app]
