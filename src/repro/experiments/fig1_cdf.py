"""Fig 1: CDF of service time divided by the mean, per application.

The paper's headline observation: Tailbench service times are long-tailed;
for Moses the p99 is roughly 8x the mean, while Img-dnn is nearly
deterministic.  This experiment samples each app's service-time process
and reports the normalised CDF plus tail ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..analysis.reporting import format_table, sparkline
from ..analysis.stats import normalized_cdf, tail_ratio
from ..sim.rng import RngRegistry
from ..workload.apps import get_app
from .scenarios import active_profile

__all__ = ["Fig1Result", "run_fig1", "render_fig1"]

#: The four apps the paper plots in Fig 1.
FIG1_APPS = ("xapian", "masstree", "moses", "sphinx")


@dataclass(frozen=True)
class Fig1Result:
    """Normalised service-time distribution for one app."""

    app: str
    #: Sorted service time / mean values.
    x: np.ndarray
    #: Cumulative probabilities.
    p: np.ndarray
    tail_ratio_p99: float
    tail_ratio_p999: float


def run_fig1(
    apps: Sequence[str] = FIG1_APPS,
    n: Optional[int] = None,
    seed: int = 2023,
    full: Optional[bool] = None,
) -> Dict[str, Fig1Result]:
    """Sample service-time distributions and build normalised CDFs."""
    profile = active_profile(full)
    n = n if n is not None else profile.sample_count
    rngs = RngRegistry(seed)
    out: Dict[str, Fig1Result] = {}
    for name in apps:
        app = get_app(name)
        works, _ = app.service.sample_batch(rngs.get(f"fig1-{name}"), n)
        # Service time at a fixed frequency is proportional to work, so the
        # normalised (divided-by-mean) CDF of work equals that of time.
        x, p = normalized_cdf(works)
        out[name] = Fig1Result(
            app=name,
            x=x,
            p=p,
            tail_ratio_p99=tail_ratio(works, 0.99),
            tail_ratio_p999=tail_ratio(works, 0.999),
        )
    return out


def render_fig1(results: Dict[str, Fig1Result]) -> str:
    """Text rendering: tail ratios and a CDF sparkline per app."""
    rows = []
    for name, r in results.items():
        # Sparkline of P(X <= x) over x in [0, 8] * mean (the paper's axis).
        grid = np.linspace(0.0, 8.0, 60)
        cdf_vals = np.searchsorted(r.x, grid, side="right") / max(len(r.x), 1)
        rows.append(
            [name, r.tail_ratio_p99, r.tail_ratio_p999, sparkline(cdf_vals, 60)]
        )
    return format_table(
        ["app", "p99/mean", "p99.9/mean", "CDF over [0, 8x mean]"], rows, "{:.2f}"
    )
