"""Chaos experiment: the fleet under seeded node failures.

Sweeps fault intensity × routing policy over the standard chaos scenario
(:func:`~repro.faults.fleet.standard_chaos_plan`: one node crash, one
correlated rack failure, one telemetry partition, per-node stochastic
DVFS faults) and adds a *no-failover ablation* — health-aware dispatch
disabled — at the top intensity.  Each row reports tail latency, SLA
compliance, energy, and the resilience counters (crashes, dropped and
re-dispatched requests, per-node availability) against the intensity-0
baseline of the same routing.

The contrast the grid is built to show: with failover, the fleet keeps
meeting the SLA on surviving nodes through crashes; without it, an
oblivious router (round-robin) keeps feeding dead nodes, whose mailboxes
drain as huge-latency completions on restart and blow the fleet p99 by
orders of magnitude.  Queue-aware routers (JSQ, power-aware) partially
self-heal — a paused node's backlog repels them — which the ablation rows
make visible too.

Cells are :class:`~repro.cluster.sim.FleetSpec` objects executed through
:func:`repro.parallel.run_grid` — the fault plan is part of the cache key
(see ``plan_digest``), so chaos cells never collide with clean fleet
cells of the same spec.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..analysis.reporting import format_table
from ..cluster.sim import FleetSpec, fleet_trace
from ..faults.fleet import standard_chaos_plan
from ..parallel.grid import run_grid
from .fleet import FLEET_LOAD, fleet_dimensions
from .scenarios import active_profile, evaluation_trace

__all__ = ["run_chaos", "render_chaos", "CHAOS_ROUTINGS", "CHAOS_INTENSITIES"]

#: Routing policies swept (display order).
CHAOS_ROUTINGS = ("round-robin", "jsq", "power-aware")
#: Fault intensities swept; 0.0 is the no-fault baseline row.
CHAOS_INTENSITIES = (0.0, 1.0)
#: Per-node power policy for every cell (prediction baseline: cheap and
#: deterministic, so the grid isolates routing/failover effects).
CHAOS_POLICY = "retail"


def run_chaos(
    full: Optional[bool] = None,
    jobs: int = 1,
    result_cache=None,
    trace_dir: Optional[str] = None,
    num_nodes: Optional[int] = None,
    app_name: str = "xapian",
    seed: Optional[int] = None,
) -> dict:
    """Run the fault-intensity × routing chaos grid plus ablation rows.

    Returns a plain-data dict (checkpoint/cache friendly):
    ``{"profile", "app", "num_nodes", "cores_per_node", "seed",
    "rows": [{routing, intensity, failover, metrics | error}, ...]}``.
    """
    profile = active_profile(full)
    default_nodes, cores_per_node = fleet_dimensions(profile)
    n_nodes = num_nodes if num_nodes is not None else default_nodes
    run_seed = profile.seed if seed is None else seed
    base = evaluation_trace(profile)
    trace = fleet_trace(base, app_name, n_nodes, cores_per_node, load=FLEET_LOAD)
    duration = float(trace.duration)

    specs: List[FleetSpec] = []
    cells: List[dict] = []

    def add(routing: str, intensity: float, health_aware: Optional[bool]) -> None:
        plan = standard_chaos_plan(intensity, n_nodes, duration, seed=run_seed)
        failover = health_aware is None  # None = auto (on when plan active)
        specs.append(
            FleetSpec(
                app=app_name,
                policy=CHAOS_POLICY,
                trace=trace,
                num_nodes=n_nodes,
                cores_per_node=cores_per_node,
                seed=run_seed,
                routing=routing,
                fault_plan=plan if not plan.is_empty else None,
                health_aware=health_aware,
                label=(
                    f"{profile.name}-chaos-{routing}-i{intensity:g}"
                    + ("" if failover else "-nofailover")
                ),
            )
        )
        cells.append(
            {"routing": routing, "intensity": intensity, "failover": failover}
        )

    for routing in CHAOS_ROUTINGS:
        for intensity in CHAOS_INTENSITIES:
            add(routing, intensity, None)
    # No-failover ablation at top intensity: the router keeps addressing
    # dead nodes, so the cost of losing health-aware dispatch is measured
    # against the row directly above it.
    worst = max(CHAOS_INTENSITIES)
    for routing in CHAOS_ROUTINGS:
        add(routing, worst, False)

    outcomes = run_grid(specs, jobs=jobs, cache=result_cache, trace_dir=trace_dir)
    rows = []
    for cell, outcome in zip(cells, outcomes):
        row = dict(cell)
        if outcome.ok:
            row["metrics"] = outcome.metrics.as_dict()
        else:
            row["error"] = outcome.error
        rows.append(row)
    return {
        "profile": profile.name,
        "app": app_name,
        "num_nodes": n_nodes,
        "cores_per_node": cores_per_node,
        "seed": run_seed,
        "rows": rows,
    }


def _fmt(value, spec: str = "{:.2f}") -> str:
    if value is None:
        return "-"
    if isinstance(value, float) and not math.isfinite(value):
        return "n/a"
    return spec.format(value)


def render_chaos(result: dict) -> str:
    """Comparison table: routing × intensity, failover vs ablation rows."""
    headers = [
        "routing",
        "intensity",
        "failover",
        "power(W)",
        "energy(J)",
        "p99(ms)",
        "p99/SLA",
        "sla",
        "timeout",
        "crashes",
        "redisp",
        "dropped",
        "avail",
    ]
    table_rows = []
    for row in result["rows"]:
        if "error" in row:
            table_rows.append(
                [row["routing"], _fmt(row["intensity"], "{:.1f}"),
                 "yes" if row["failover"] else "NO"]
                + ["ERROR"] * (len(headers) - 3)
            )
            continue
        m = row["metrics"]
        fleet = m["fleet"]
        sla = fleet["sla"]
        table_rows.append(
            [
                row["routing"],
                _fmt(row["intensity"], "{:.1f}"),
                "yes" if row["failover"] else "NO",
                _fmt(fleet["avg_power_watts"], "{:.1f}"),
                _fmt(fleet["energy_joules"], "{:.0f}"),
                _fmt(fleet["tail_latency"] * 1e3),
                _fmt(fleet["tail_latency"] / sla if sla else float("nan")),
                "met" if fleet["sla_met"] else "MISS",
                _fmt(fleet["timeout_rate"], "{:.2%}"),
                m["crashes"],
                m["redispatches"],
                m["dropped_requests"],
                _fmt(m["fleet_availability"], "{:.3f}"),
            ]
        )
    lines = [
        (
            f"chaos: {result['num_nodes']} nodes x "
            f"{result['cores_per_node']} cores, app={result['app']}, "
            f"policy={CHAOS_POLICY}, profile={result['profile']}, "
            f"seed={result['seed']} "
            "(failover=NO rows: health-aware dispatch disabled)"
        ),
        format_table(headers, table_rows, "{:.2f}"),
    ]
    return "\n".join(lines)
