"""Checkpoint payload codec: nested python trees <-> (JSON, array-pack).

A checkpoint's ``state`` is an arbitrary nesting of dicts, lists, tuples,
numpy arrays, python scalars and ``None`` — the shapes produced by the
``state_dict()`` protocol across the codebase.  The codec splits such a
tree into two streams that serialise exactly:

* a JSON-safe skeleton holding scalars, structure and placeholders, and
* a flat ``{name: ndarray}`` mapping holding every array payload, stored
  as an ``.npz`` archive by :mod:`repro.checkpoint.manager`.

Bit-exactness is the contract: float64 scalars round-trip through JSON's
``repr``-based encoding, arbitrary-precision ints (PCG64 carries 128-bit
state words) are native JSON, and arrays are stored raw.  Objects outside
that vocabulary (e.g. experiment result dataclasses) fall back to pickle
bytes stored as a ``uint8`` array — gate with ``allow_pickle=False`` when
snapshots must stay fully introspectable.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, Tuple

import numpy as np

__all__ = ["encode_tree", "decode_tree", "CheckpointEncodeError"]

#: Marker keys; a real dict never collides because user dicts are wrapped.
_ND = "__nd__"
_MAP = "__map__"
_TUPLE = "__tuple__"
_BYTES = "__bytes__"
_PICKLE = "__pickle__"
_SCALAR = "__np__"


class CheckpointEncodeError(TypeError):
    """A value could not be encoded (pickle disabled or key not a string)."""


def encode_tree(
    tree: Any, allow_pickle: bool = True
) -> Tuple[Any, Dict[str, np.ndarray]]:
    """Split ``tree`` into a JSON-safe skeleton and an array mapping."""
    arrays: Dict[str, np.ndarray] = {}

    def reserve(arr: np.ndarray) -> str:
        key = f"a{len(arrays)}"
        arrays[key] = arr
        return key

    def enc(value: Any) -> Any:
        if value is None or isinstance(value, (bool, int, float, str)):
            return value
        if isinstance(value, np.ndarray):
            return {_ND: reserve(value)}
        if isinstance(value, (np.bool_, np.integer, np.floating)):
            # Preserve the numpy dtype so e.g. an np.float64 counter comes
            # back as one (stored as a 0-d array).
            return {_SCALAR: reserve(np.asarray(value))}
        if isinstance(value, dict):
            out = {}
            for k, v in value.items():
                if not isinstance(k, str):
                    raise CheckpointEncodeError(
                        f"checkpoint dict keys must be strings, got {k!r}"
                    )
                out[k] = enc(v)
            return {_MAP: out}
        if isinstance(value, tuple):
            return {_TUPLE: [enc(v) for v in value]}
        if isinstance(value, list):
            return [enc(v) for v in value]
        if isinstance(value, (bytes, bytearray)):
            return {_BYTES: reserve(np.frombuffer(bytes(value), dtype=np.uint8))}
        if allow_pickle:
            blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            return {_PICKLE: reserve(np.frombuffer(blob, dtype=np.uint8))}
        raise CheckpointEncodeError(
            f"cannot encode {type(value).__name__!r} without pickle"
        )

    return enc(tree), arrays


def decode_tree(
    skeleton: Any, arrays: Dict[str, np.ndarray], allow_pickle: bool = True
) -> Any:
    """Rebuild the tree produced by :func:`encode_tree`."""

    def dec(value: Any) -> Any:
        if isinstance(value, dict):
            if _ND in value:
                return np.array(arrays[value[_ND]], copy=True)
            if _SCALAR in value:
                return arrays[value[_SCALAR]][()]
            if _MAP in value:
                return {k: dec(v) for k, v in value[_MAP].items()}
            if _TUPLE in value:
                return tuple(dec(v) for v in value[_TUPLE])
            if _BYTES in value:
                return arrays[value[_BYTES]].tobytes()
            if _PICKLE in value:
                if not allow_pickle:
                    raise CheckpointEncodeError(
                        "snapshot contains pickled payloads but allow_pickle=False"
                    )
                return pickle.loads(arrays[value[_PICKLE]].tobytes())
            raise CheckpointEncodeError(f"unknown skeleton marker in {value!r}")
        if isinstance(value, list):
            return [dec(v) for v in value]
        return value

    return dec(skeleton)
