"""Tests for the replay buffer and exploration noise."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rl import GaussianNoise, OrnsteinUhlenbeckNoise, ReplayBuffer, Transition


class TestReplayBuffer:
    def _fill(self, buf, n):
        for i in range(n):
            buf.push(
                np.full(buf.state_dim, float(i)),
                np.full(buf.action_dim, float(i)),
                float(i),
                np.full(buf.state_dim, float(i + 1)),
                i % 2 == 0,
            )

    def test_size_growth_and_cap(self):
        buf = ReplayBuffer(5, 2, 1)
        self._fill(buf, 3)
        assert len(buf) == 3 and not buf.full
        self._fill(buf, 5)
        assert len(buf) == 5 and buf.full
        assert buf.total_pushed == 8

    def test_oldest_overwritten(self):
        buf = ReplayBuffer(3, 1, 1)
        self._fill(buf, 5)
        stored_rewards = set(buf._rewards[:3].tolist())
        assert stored_rewards == {2.0, 3.0, 4.0}

    def test_sample_shapes(self, rng):
        buf = ReplayBuffer(10, 4, 2)
        self._fill(buf, 10)
        s, a, r, s2, d = buf.sample(6, rng)
        assert s.shape == (6, 4) and a.shape == (6, 2)
        assert r.shape == (6,) and s2.shape == (6, 4) and d.shape == (6,)
        assert d.dtype == bool

    def test_sample_consistency(self, rng):
        buf = ReplayBuffer(10, 1, 1)
        self._fill(buf, 10)
        s, a, r, s2, _ = buf.sample(32, rng)
        # each transition satisfies s2 = s + 1 and r = s
        assert np.allclose(s2[:, 0], s[:, 0] + 1)
        assert np.allclose(r, s[:, 0])

    def test_sample_returns_copies(self, rng):
        buf = ReplayBuffer(4, 1, 1)
        self._fill(buf, 4)
        s, *_ = buf.sample(2, rng)
        s[...] = 999.0
        assert not np.any(buf._states == 999.0)

    def test_empty_sample_raises(self, rng):
        with pytest.raises(ValueError):
            ReplayBuffer(4, 1, 1).sample(1, rng)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReplayBuffer(0, 1, 1)

    def test_clear(self, rng):
        buf = ReplayBuffer(4, 1, 1)
        self._fill(buf, 4)
        buf.clear()
        assert len(buf) == 0

    def test_push_transition_dataclass(self):
        buf = ReplayBuffer(4, 2, 1)
        tr = Transition(np.zeros(2), np.ones(1), 1.5, np.ones(2), True)
        buf.push_transition(tr)
        assert len(buf) == 1
        assert buf._rewards[0] == 1.5

    @given(cap=st.integers(1, 50), pushes=st.integers(0, 120))
    @settings(max_examples=30, deadline=None)
    def test_property_size_never_exceeds_capacity(self, cap, pushes):
        buf = ReplayBuffer(cap, 1, 1)
        for i in range(pushes):
            buf.push(np.zeros(1), np.zeros(1), 0.0, np.zeros(1))
        assert len(buf) == min(cap, pushes)


class TestGaussianNoise:
    def test_sample_statistics(self, rng):
        noise = GaussianNoise(1, rng, mu=0.3, sigma=0.5)
        samples = np.array([noise.sample()[0] for _ in range(20_000)])
        assert samples.mean() == pytest.approx(0.3, abs=0.02)
        assert samples.std() == pytest.approx(0.5, abs=0.02)

    def test_decay_reduces_sigma_and_mu(self, rng):
        noise = GaussianNoise(1, rng, mu=0.4, sigma=1.0, decay=0.5, min_sigma=0.1)
        noise.step_decay()
        assert noise.sigma == pytest.approx(0.5)
        assert noise.mu == pytest.approx(0.2)

    def test_sigma_floor(self, rng):
        noise = GaussianNoise(1, rng, sigma=0.2, decay=0.1, min_sigma=0.15)
        for _ in range(10):
            noise.step_decay()
        assert noise.sigma == pytest.approx(0.15)

    def test_reset_restores_initial(self, rng):
        noise = GaussianNoise(1, rng, mu=0.3, sigma=1.0, decay=0.5)
        noise.step_decay()
        noise.reset()
        assert noise.sigma == 1.0 and noise.mu == 0.3

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            GaussianNoise(0, rng)
        with pytest.raises(ValueError):
            GaussianNoise(1, rng, sigma=-1.0)
        with pytest.raises(ValueError):
            GaussianNoise(1, rng, decay=0.0)


class TestOrnsteinUhlenbeck:
    def test_temporal_correlation(self, rng):
        noise = OrnsteinUhlenbeckNoise(1, rng, theta=0.1, sigma=0.2)
        xs = np.array([noise.sample()[0] for _ in range(5000)])
        lag1 = np.corrcoef(xs[:-1], xs[1:])[0, 1]
        assert lag1 > 0.8  # strongly correlated, unlike white noise

    def test_mean_reversion(self, rng):
        noise = OrnsteinUhlenbeckNoise(1, rng, mu=2.0, theta=0.5, sigma=0.01)
        for _ in range(200):
            x = noise.sample()
        assert x[0] == pytest.approx(2.0, abs=0.2)

    def test_reset(self, rng):
        noise = OrnsteinUhlenbeckNoise(2, rng, mu=0.0)
        noise.sample()
        noise.reset()
        assert np.allclose(noise._x, 0.0)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            OrnsteinUhlenbeckNoise(0, rng)
        with pytest.raises(ValueError):
            OrnsteinUhlenbeckNoise(1, rng, dt=0.0)
