"""Soft Actor-Critic (Haarnoja et al. 2018) with a tanh-Gaussian policy.

Included because the paper benchmarks SAC's inference cost (Table 2) when
motivating the hierarchical design, and because it provides a stochastic-
policy ablation of DeepPower's top layer.  Actions live in [0, 1]^d via
``a = (tanh(u) + 1) / 2`` with ``u ~ N(mean(s), std(s))``; all gradients
are derived by hand (reparameterisation trick), see inline comments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.layers import Linear, Parameter
from ..nn.network import MLP, Module
from ..nn.optim import Adam, clip_grad_norm
from ..nn.losses import mse_loss
from ..sim.rng import generator_state, restore_generator
from .critics import TwinCritic
from .replay import ReplayBuffer, batch_is_finite

__all__ = ["SacConfig", "GaussianPolicy", "SacAgent"]

_LOG_STD_MIN = -5.0
_LOG_STD_MAX = 2.0


class GaussianPolicy(Module):
    """Trunk + (mean, log_std) heads; log_std squashed into a safe range.

    ``log_std = min + 0.5 * (max - min) * (tanh(raw) + 1)`` keeps the head
    differentiable everywhere (instead of hard clipping).
    """

    def __init__(
        self,
        state_dim: int,
        action_dim: int,
        rng: np.random.Generator,
        hidden: Sequence[int] = (32, 24, 16),
    ) -> None:
        self.action_dim = action_dim
        self.trunk = MLP([state_dim, *hidden], rng, output_activation="relu")
        self.mean_head = Linear(hidden[-1], action_dim, rng, name="sac.mean")
        self.log_std_head = Linear(hidden[-1], action_dim, rng, name="sac.log_std")
        self._raw: Optional[np.ndarray] = None

    def forward(self, states: np.ndarray) -> np.ndarray:
        """Returns ``[mean | log_std]`` of shape (batch, 2 * action_dim)."""
        h = self.trunk.forward(states)
        mean = self.mean_head.forward(h)
        raw = self.log_std_head.forward(h)
        self._raw = raw
        log_std = _LOG_STD_MIN + 0.5 * (_LOG_STD_MAX - _LOG_STD_MIN) * (np.tanh(raw) + 1.0)
        return np.concatenate([mean, log_std], axis=1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """``grad_out`` is ``[d/dmean | d/dlog_std]``."""
        if self._raw is None:
            raise RuntimeError("backward before forward")
        d = self.action_dim
        g_mean = grad_out[:, :d]
        g_log_std = grad_out[:, d:]
        t = np.tanh(self._raw)
        g_raw = g_log_std * 0.5 * (_LOG_STD_MAX - _LOG_STD_MIN) * (1.0 - t * t)
        gh = self.mean_head.backward(g_mean) + self.log_std_head.backward(g_raw)
        return self.trunk.backward(gh)

    def parameters(self) -> List[Parameter]:
        return (
            self.trunk.parameters()
            + self.mean_head.parameters()
            + self.log_std_head.parameters()
        )

    # ------------------------------------------------------------- sampling

    def sample(
        self, states: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, np.ndarray, dict]:
        """Reparameterised sample: returns (action in [0,1], log_prob, cache).

        ``cache`` carries the intermediates needed for the manual actor
        backward pass.
        """
        out = self.forward(states)
        d = self.action_dim
        mean, log_std = out[:, :d], out[:, d:]
        std = np.exp(log_std)
        eps = rng.standard_normal(mean.shape)
        u = mean + std * eps
        t = np.tanh(u)
        a = 0.5 * (t + 1.0)
        # log pi(a) = sum_j [ logN(u_j) - log( (1 - t_j^2)/2 ) ]
        log_n = -0.5 * eps * eps - log_std - 0.5 * np.log(2 * np.pi)
        log_det = np.log(np.maximum(1.0 - t * t, 1e-12) / 2.0)
        logp = (log_n - log_det).sum(axis=1)
        cache = {"mean": mean, "log_std": log_std, "std": std, "eps": eps, "t": t}
        return a, logp, cache

    def mean_action(self, states: np.ndarray) -> np.ndarray:
        """Deterministic evaluation action (tanh of the mean)."""
        out = self.forward(states)
        mean = out[:, : self.action_dim]
        return 0.5 * (np.tanh(mean) + 1.0)


@dataclass
class SacConfig:
    """Hyper-parameters for :class:`SacAgent`."""

    state_dim: int = 8
    action_dim: int = 2
    gamma: float = 0.99
    tau: float = 0.005
    actor_lr: float = 3e-4
    critic_lr: float = 1e-3
    alpha: float = 0.05
    batch_size: int = 64
    buffer_capacity: int = 100_000
    warmup: int = 64
    hidden: Sequence[int] = field(default_factory=lambda: (32, 24, 16))
    grad_clip: float = 10.0


class SacAgent:
    """SAC with fixed entropy temperature over [0, 1]^d actions."""

    def __init__(self, config: SacConfig, rng: np.random.Generator) -> None:
        self.cfg = config
        self.rng = rng
        self.policy = GaussianPolicy(config.state_dim, config.action_dim, rng, config.hidden)
        ch = (config.hidden[0], config.hidden[1], config.hidden[2])
        self.critic = TwinCritic(config.state_dim, config.action_dim, rng, ch)
        self.critic_target = TwinCritic(config.state_dim, config.action_dim, rng, ch)
        self.critic_target.copy_from(self.critic)
        self.actor_opt = Adam(self.policy.parameters(), lr=config.actor_lr)
        self.critic_opt = Adam(self.critic.parameters(), lr=config.critic_lr)
        self.replay = ReplayBuffer(config.buffer_capacity, config.state_dim, config.action_dim)
        self.updates = 0
        #: Minibatches abandoned because the batch or its losses were
        #: non-finite (replay corruption, diverged networks).
        self.skipped_updates = 0

    # ------------------------------------------------------------------ acting

    def act(self, state: np.ndarray, explore: bool = True) -> np.ndarray:
        s = np.asarray(state, dtype=float).reshape(1, -1)
        if explore:
            if self.replay.total_pushed < self.cfg.warmup:
                return self.rng.random(self.cfg.action_dim)
            a, _, _ = self.policy.sample(s, self.rng)
            return a[0]
        return self.policy.mean_action(s)[0]

    def observe(self, state, action, reward, next_state, done=False) -> None:
        self.replay.push(state, action, reward, next_state, done)

    # ---------------------------------------------------------------- training

    @property
    def ready(self) -> bool:
        return len(self.replay) >= max(self.cfg.batch_size, self.cfg.warmup)

    def update(self) -> Optional[Dict[str, float]]:
        if not self.ready:
            return None
        cfg = self.cfg
        s, a, r, s2, done = self.replay.sample(cfg.batch_size, self.rng)
        if not batch_is_finite(s, a, r, s2):
            self.skipped_updates += 1
            return None

        # ---- critic target: y = r + gamma (min Q'(s2, a2) - alpha log pi) ----
        a2, logp2, _ = self.policy.sample(s2, self.rng)
        q_next = self.critic_target.min_q(s2, a2)[:, 0] - cfg.alpha * logp2
        y = (r + cfg.gamma * (1.0 - done.astype(float)) * q_next).reshape(-1, 1)

        critic_loss = 0.0
        self.critic.zero_grad()
        grads = []
        for qnet in (self.critic.q1, self.critic.q2):
            q = qnet.forward_sa(s, a)
            loss, grad = mse_loss(q, y)
            critic_loss += loss
            grads.append((qnet, grad))
        if not np.isfinite(critic_loss):
            self.skipped_updates += 1
            return None
        for qnet, grad in grads:
            qnet.backward(grad)
        clip_grad_norm(self.critic.parameters(), cfg.grad_clip)
        self.critic_opt.step()

        # ---- actor: minimise E[alpha log pi - min Q(s, a_pi)] ----------------
        a_pi, logp, cache = self.policy.sample(s, self.rng)
        q1 = self.critic.q1.forward_sa(s, a_pi)
        _, dq1_da = self.critic.q1.backward(np.ones_like(q1))
        self.critic.q1.zero_grad()
        q2 = self.critic.q2.forward_sa(s, a_pi)
        _, dq2_da = self.critic.q2.backward(np.ones_like(q2))
        self.critic.q2.zero_grad()
        # Backprop through the element-wise min of the twin critics.
        use_q1 = (q1 <= q2).astype(float)  # (batch, 1) broadcast over actions
        dq_da = use_q1 * dq1_da + (1.0 - use_q1) * dq2_da
        actor_loss = float((cfg.alpha * logp - np.minimum(q1, q2)[:, 0]).mean())
        if not (np.isfinite(actor_loss) and np.isfinite(dq_da).all()):
            self.skipped_updates += 1
            return None

        t, std, eps = cache["t"], cache["std"], cache["eps"]
        da_du = 0.5 * (1.0 - t * t)
        # Under the reparameterisation u = mean + std * eps (eps fixed):
        #   d log pi / du        = 2 t            (tanh log-det correction;
        #                                          the Gaussian density term is
        #                                          constant in mean)
        #   d log pi / dlog_std  = -1 + (2 t) * std * eps
        #   dQ / du              = (dQ/da) * da/du
        # so with L = alpha * log pi - Q:
        dl_du = cfg.alpha * (2.0 * t) - dq_da * da_du
        dl_dmean = dl_du
        dl_dlog_std = dl_du * (std * eps) - cfg.alpha
        n = cfg.batch_size
        grad_out = np.concatenate([dl_dmean, dl_dlog_std], axis=1) / n
        self.policy.zero_grad()
        # Re-run forward so layer caches match the sampled batch.
        self.policy.forward(s)
        self.policy.backward(grad_out)
        clip_grad_norm(self.policy.parameters(), cfg.grad_clip)
        self.actor_opt.step()

        # ---- targets ----------------------------------------------------------
        self.critic_target.soft_update_from(self.critic, cfg.tau)
        self.updates += 1
        return {
            "critic_loss": critic_loss,
            "actor_loss": actor_loss,
            "entropy": float(-logp.mean()),
        }

    # ------------------------------------------------------------- persistence

    def state_dict(self) -> Dict:
        """Complete learner snapshot (see :meth:`~repro.rl.ddpg.DdpgAgent.state_dict`)."""
        return {
            "algo": "sac",
            "policy": self.policy.state_dict(),
            "critic": self.critic.state_dict(),
            "critic_target": self.critic_target.state_dict(),
            "actor_opt": self.actor_opt.state_dict(),
            "critic_opt": self.critic_opt.state_dict(),
            "replay": self.replay.state_dict(),
            "rng": generator_state(self.rng),
            "updates": self.updates,
            "skipped_updates": self.skipped_updates,
        }

    def load_state_dict(self, state: Dict) -> None:
        if state.get("algo") != "sac":
            raise ValueError(f"snapshot is for algo {state.get('algo')!r}, not 'sac'")
        self.policy.load_state_dict(state["policy"])
        self.critic.load_state_dict(state["critic"])
        self.critic_target.load_state_dict(state["critic_target"])
        self.actor_opt.load_state_dict(state["actor_opt"])
        self.critic_opt.load_state_dict(state["critic_opt"])
        self.replay.load_state_dict(state["replay"])
        restore_generator(self.rng, state["rng"])
        self.updates = int(state["updates"])
        self.skipped_updates = int(state["skipped_updates"])
