"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cpu import Cpu
from repro.sim import Engine, RngRegistry
from repro.workload import AppSpec, LognormalCorrelatedService


@pytest.fixture
def engine() -> Engine:
    return Engine()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def rngs() -> RngRegistry:
    return RngRegistry(12345)


@pytest.fixture
def cpu(engine) -> Cpu:
    return Cpu(engine, 4)


@pytest.fixture
def tiny_app() -> AppSpec:
    """A fast app profile for cheap end-to-end tests.

    Mean service 10 ms at fmax, SLA 60 ms, mild tail — one simulated second
    covers many requests without a heavy event count.
    """
    return AppSpec(
        name="tiny",
        sla=0.06,
        service=LognormalCorrelatedService(mean_work=0.021, sigma=0.5, rho=0.8),
        contention=0.3,
        short_time=0.002,
        description="test app",
    )
