"""Latency-critical server substrate: queue, workers, metrics, telemetry."""

from .metrics import LatencyRecorder, RunMetrics
from .queue import RequestQueue
from .server import PolicyHooks, Server
from .telemetry import STATE_FRACTIONS, TelemetryChannel, TelemetrySnapshot
from .worker import Worker

__all__ = [
    "RequestQueue",
    "Worker",
    "Server",
    "PolicyHooks",
    "LatencyRecorder",
    "RunMetrics",
    "TelemetryChannel",
    "TelemetrySnapshot",
    "STATE_FRACTIONS",
]
