"""Fig 11: frequency behaviour under fixed (BaseFreq, ScalingCoef) pairs.

The paper executes Xapian with the thread-controller parameters pinned to
three settings over a 50 ms window and shows the per-core frequency
heatmaps: low BaseFreq + high ScalingCoef -> cool start, rapid ramp; high
BaseFreq + low ScalingCoef -> warm start, gentle ramp.

We quantify each setting with the idle-floor frequency, the mean ramp
slope during request execution, and the turbo fraction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..analysis.reporting import format_table
from ..core.thread_controller import ThreadController
from ..workload.apps import get_app
from ..workload.trace import constant_trace
from .runner import build_context
from .scenarios import active_profile

__all__ = ["Fig11Result", "run_fig11", "render_fig11", "FIG11_SETTINGS"]

#: The paper's three parameter settings.
FIG11_SETTINGS = ((0.4, 1.0), (0.5, 0.75), (0.6, 0.5))


@dataclass(frozen=True)
class Fig11Result:
    base_freq: float
    scaling_coef: float
    times: np.ndarray
    freqs: np.ndarray
    idle_floor: float
    mean_busy_ramp: float  # GHz per (elapsed/SLA) unit, observed
    turbo_fraction: float
    mean_frequency: float


def run_fig11(
    settings: Sequence[Tuple[float, float]] = FIG11_SETTINGS,
    window_physical: float = 0.05,
    load: float = 0.6,
    app_name: str = "xapian",
    seed: int = 2023,
    full: Optional[bool] = None,
) -> Dict[Tuple[float, float], Fig11Result]:
    """Run the controller with pinned parameters over a short window."""
    profile = active_profile(full)
    app = get_app(app_name)
    window = window_physical * app.dilation
    out: Dict[Tuple[float, float], Fig11Result] = {}
    for bf, sc in settings:
        trace = constant_trace(app.rps_for_load(load, profile.num_cores), window)
        ctx = build_context(app, trace, profile.num_cores, seed, keep_requests=True)
        tc = ThreadController(ctx.engine, ctx.server, record_trace=True)
        tc.set_params(bf, sc)
        tc.start()
        ctx.source.start()
        ctx.engine.run_until(window)
        times, freqs = tc.trace_arrays()

        table = ctx.cpu.table
        idle_floor = table.quantize(table.from_score(bf))
        scores = np.stack([p.scores for p in tc.trace])
        busy = scores > bf + 1e-12  # score above floor => request in flight
        # Observed ramp: regression of busy frequency on *consumed time*
        # (elapsed / SLA) — the paper's x-axis; slope ~ sc * (fmax - fmin)
        # below turbo, so the three settings order by ScalingCoef.
        if busy.any() and sc > 0:
            consumed = (scores[busy] - bf) / sc
            f = freqs[busy]
            below_turbo = f < table.turbo - 1e-9
            if below_turbo.sum() > 2:
                slope = float(np.polyfit(consumed[below_turbo], f[below_turbo], 1)[0])
            else:
                slope = 0.0
        else:
            slope = 0.0
        out[(bf, sc)] = Fig11Result(
            base_freq=bf,
            scaling_coef=sc,
            times=times,
            freqs=freqs,
            idle_floor=idle_floor,
            mean_busy_ramp=slope,
            turbo_fraction=float((freqs >= table.turbo - 1e-9).mean()) if freqs.size else 0.0,
            mean_frequency=float(freqs.mean()) if freqs.size else 0.0,
        )
    return out


def render_fig11(results: Dict[Tuple[float, float], Fig11Result]) -> str:
    rows = []
    for (bf, sc), r in results.items():
        rows.append(
            [
                f"bf={bf} sc={sc}",
                r.idle_floor,
                r.mean_busy_ramp,
                f"{r.turbo_fraction:.1%}",
                r.mean_frequency,
            ]
        )
    return format_table(
        ["setting", "idle floor (GHz)", "busy ramp slope", "turbo frac", "mean freq"],
        rows,
        "{:.2f}",
    )
