"""Command-line interface.

Examples
--------
List and run paper experiments::

    deeppower list
    deeppower experiment fig5
    deeppower experiment fig7 --full

Quick policy comparison on one app::

    deeppower compare --app xapian --policies baseline,retail

Train and save a DeepPower agent (with an observability trace)::

    deeppower train --app xapian --episodes 20 --out agent.npz \
        --trace-out run.trace.jsonl --metrics-out run.metrics.json

Run an 8-node fleet under a global power cap and inspect it per node::

    deeppower fleet --nodes 8 --policy retail --routing power-aware \
        --power-cap auto --trace-out fleet.trace.jsonl
    deeppower trace summarize fleet.trace.jsonl --group-by node

Rebuild the per-interval (Fig 8-style) table from a trace::

    deeppower trace summarize run.trace.jsonl
"""

from __future__ import annotations

import argparse
import math
import os
import sys

from .experiments.registry import get_experiment, list_experiments


def _jobs_arg(value: str) -> int:
    """argparse type for ``--jobs``: a worker count of at least 1."""
    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"--jobs expects an integer, got {value!r}")
    if jobs < 1:
        raise argparse.ArgumentTypeError(f"--jobs must be >= 1, got {jobs}")
    return jobs


def _positive_int(value: str) -> int:
    """argparse type for counts that must be at least 1."""
    try:
        n = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}")
    if n < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {n}")
    return n


def _positive_float(value: str) -> float:
    """argparse type for rates/intensities that must be finite and > 0.

    The finiteness check matters: ``float('nan') <= 0`` is False, so
    without it ``nan`` (and ``inf``) would sail through a plain
    positivity test and surface later as a deep simulation traceback.
    """
    try:
        x = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {value!r}")
    if not math.isfinite(x):
        raise argparse.ArgumentTypeError(
            f"expected a finite number, got {value!r}"
        )
    if x <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {x}")
    return x


def _nonneg_float(value: str) -> float:
    """argparse type for durations that must be finite and >= 0."""
    try:
        x = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {value!r}")
    if not math.isfinite(x):
        raise argparse.ArgumentTypeError(
            f"expected a finite number, got {value!r}"
        )
    if x < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {x}")
    return x


def _nonneg_int(value: str) -> int:
    """argparse type for budgets/counts that must be >= 0."""
    try:
        n = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}")
    if n < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {n}")
    return n


def _out_file_arg(value: str) -> str:
    """argparse type for output file paths (``--trace-out``, ``--metrics-out``).

    Fails fast — before minutes of simulation — when the write is doomed:
    missing parent directory, unwritable parent, or the path naming an
    existing directory / read-only file.
    """
    parent = os.path.dirname(os.path.abspath(value))
    if not os.path.isdir(parent):
        raise argparse.ArgumentTypeError(
            f"cannot write {value!r}: parent directory {parent!r} does not "
            "exist (create it first, e.g. mkdir -p)"
        )
    if not os.access(parent, os.W_OK):
        raise argparse.ArgumentTypeError(
            f"cannot write {value!r}: directory {parent!r} is not writable"
        )
    if os.path.isdir(value):
        raise argparse.ArgumentTypeError(
            f"cannot write {value!r}: it is a directory, expected a file path"
        )
    if os.path.exists(value) and not os.access(value, os.W_OK):
        raise argparse.ArgumentTypeError(
            f"cannot write {value!r}: file exists and is not writable"
        )
    return value


def _out_dir_arg(value: str) -> str:
    """argparse type for output directories (``--trace-dir``).

    The directory itself is created on demand, but its parent must already
    exist and be writable — a deeply nonexistent path is almost always a
    typo, better rejected now than after the runs complete.
    """
    path = os.path.abspath(value)
    if os.path.isdir(path):
        if not os.access(path, os.W_OK):
            raise argparse.ArgumentTypeError(
                f"cannot use {value!r}: directory is not writable"
            )
        return value
    if os.path.exists(path):
        raise argparse.ArgumentTypeError(
            f"cannot use {value!r}: exists and is not a directory"
        )
    parent = os.path.dirname(path)
    if not os.path.isdir(parent):
        raise argparse.ArgumentTypeError(
            f"cannot create {value!r}: parent directory {parent!r} does not "
            "exist (create it first, e.g. mkdir -p)"
        )
    if not os.access(parent, os.W_OK):
        raise argparse.ArgumentTypeError(
            f"cannot create {value!r}: parent directory {parent!r} is not "
            "writable"
        )
    return value


def _power_cap_arg(value: str):
    """argparse type for watt budgets: positive *finite* watts or ``auto``.

    ``nan`` must be rejected explicitly — ``float('nan') <= 0`` is False,
    so a plain positivity check would accept it and the run would only
    fail much later, deep inside the coordinator.
    """
    if value == "auto":
        return "auto"
    try:
        watts = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected watts or 'auto', got {value!r}"
        )
    if not math.isfinite(watts):
        raise argparse.ArgumentTypeError(
            f"watts must be a finite number, got {value!r}"
        )
    if watts <= 0:
        raise argparse.ArgumentTypeError(f"watts must be positive, got {watts}")
    return watts


def _add_trace_layout_args(sp: argparse.ArgumentParser) -> None:
    """Trace storage-layout flags shared by the fleet-shaped commands."""
    sp.add_argument(
        "--trace-segment-events", type=_positive_int, default=None,
        help="rotate the trace into numbered segment files every N events "
        "(--trace-out becomes a JSON segment index; read back "
        "transparently by trace summarize/tail/query)",
    )
    sp.add_argument(
        "--trace-compress", default=None, choices=["gzip", "zstd"],
        help="compress the trace (gzip: stdlib; zstd: needs the optional "
        "zstandard module)",
    )
    sp.add_argument(
        "--trace-shard-nodes", action="store_true",
        help="route node-tagged events into per-node segment files "
        "(implies the indexed layout; per-node order is preserved, "
        "cross-node interleaving is not)",
    )


def _validate_resume(parser: argparse.ArgumentParser, args) -> None:
    """``--resume`` needs an existing ``--checkpoint-dir`` to resume from."""
    if not getattr(args, "resume", False):
        return
    ckpt = getattr(args, "checkpoint_dir", None)
    if ckpt is None:
        parser.error("--resume requires --checkpoint-dir")
    if not os.path.isdir(ckpt):
        parser.error(
            f"--resume: checkpoint directory {ckpt!r} does not exist"
        )


def _cmd_list(args) -> int:
    for exp in list_experiments():
        print(f"{exp.id:22s} {exp.description}")
    return 0


def _cmd_experiment(args) -> int:
    exp = get_experiment(args.id)
    ckpt = dict(
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        jobs=args.jobs,
        result_cache=not args.no_cache,
        trace_dir=args.trace_dir,
    )
    kwargs = {}
    if args.full:
        kwargs["full"] = True
    try:
        print(exp.execute(**ckpt, **kwargs))
    except TypeError:
        # Some experiments (fig5, table2, overhead) take no `full` flag.
        print(exp.execute(**ckpt))
    return 0


def _cmd_compare(args) -> int:
    from .baselines import GeminiPolicy, MaxFrequencyPolicy, RetailPolicy
    from .experiments.calibration import calibrate_to_sla
    from .experiments.runner import run_policy
    from .experiments.scenarios import active_profile, evaluation_trace, workers_for
    from .workload.apps import get_app
    from .analysis.reporting import format_table

    factories = {
        "baseline": lambda ctx: MaxFrequencyPolicy(ctx),
        "retail": lambda ctx: RetailPolicy(ctx),
        "gemini": lambda ctx: GeminiPolicy(ctx),
    }
    profile = active_profile(args.full)
    app = get_app(args.app)
    nw = workers_for(args.app, profile.num_cores)
    cal = calibrate_to_sla(
        app, evaluation_trace(profile), profile.num_cores, num_workers=nw
    )
    rows = []
    for name in args.policies.split(","):
        name = name.strip()
        if name not in factories:
            print(f"unknown policy {name!r}; choose from {sorted(factories)}", file=sys.stderr)
            return 2
        m = run_policy(
            factories[name], app, cal.trace, profile.num_cores,
            seed=args.seed, num_workers=nw,
        ).metrics
        rows.append(
            [name, m.avg_power_watts, m.tail_latency * 1e3,
             f"{m.tail_latency / app.sla:.2f}x", f"{m.timeout_rate:.2%}"]
        )
    print(format_table(["policy", "power(W)", "p99(ms)", "p99/SLA", "timeout"], rows, "{:.2f}"))
    return 0


def _cmd_train(args) -> int:
    from .core import train_deeppower
    from .experiments.calibration import calibrate_to_sla
    from .experiments.fig7_main import tuned_agent_setup
    from .experiments.scenarios import active_profile, evaluation_trace, workers_for
    from .workload.apps import get_app

    profile = active_profile(args.full)
    app = get_app(args.app)
    nw = workers_for(args.app, profile.num_cores)
    cal = calibrate_to_sla(
        app, evaluation_trace(profile), profile.num_cores, num_workers=nw
    )
    agent, cfg = tuned_agent_setup(args.seed)
    result = train_deeppower(
        app, cal.trace,
        episodes=args.episodes if args.episodes else profile.train_episodes,
        num_cores=profile.num_cores, seed=args.seed, agent=agent, config=cfg,
        verbose=True,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
        trace_out=args.trace_out,
        metrics_out=args.metrics_out,
        profile=args.profile_spans,
    )
    agent.save(args.out)
    print(f"saved trained agent to {args.out}")
    print(f"final mean reward: {result.episodes[-1].mean_reward:.3f}")
    if args.trace_out:
        print(f"trace written to {args.trace_out}")
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out}")
    return 0


def _cmd_fleet(args) -> int:
    from .analysis.reporting import format_table
    from .cluster import ClusterConfig, ClusterSim, fleet_power_budget, fleet_trace
    from .experiments.fleet import FLEET_LOAD, fleet_dimensions
    from .experiments.scenarios import active_profile, evaluation_trace
    from .obs import Observability

    profile = active_profile(args.full)
    _, default_cores = fleet_dimensions(profile)
    cores = args.cores if args.cores is not None else default_cores
    seed = args.seed if args.seed is not None else profile.seed
    load = args.load if args.load is not None else FLEET_LOAD
    trace = fleet_trace(
        evaluation_trace(profile), args.app, args.nodes, cores, load=load
    )
    cap = args.power_cap
    if cap == "auto":
        cap = fleet_power_budget(args.nodes, cores)
    config = ClusterConfig(
        app=args.app,
        num_nodes=args.nodes,
        cores_per_node=cores,
        policy=args.policy,
        routing=args.routing,
        power_cap_watts=cap,
        seed=seed,
        agent_path=args.agent,
        stepping=args.stepping,
    )
    obs = None
    if args.trace_out:
        obs = Observability.from_paths(
            trace_out=args.trace_out,
            meta={
                "kind": "fleet",
                "app": args.app,
                "policy": args.policy,
                "routing": args.routing,
                "num_nodes": args.nodes,
                "seed": seed,
            },
            trace_segment_events=args.trace_segment_events,
            trace_compress=args.trace_compress,
            trace_shard_key="node" if args.trace_shard_nodes else None,
        )
    try:
        metrics = ClusterSim(config, trace, obs=obs).run()
    finally:
        if obs is not None:
            obs.close()

    def _ms(seconds: float) -> float:
        return seconds * 1e3

    rows = []
    for node, (m, routed) in enumerate(zip(metrics.node_metrics, metrics.routed)):
        rows.append(
            [node, routed, m.avg_power_watts, m.energy_joules, m.completed,
             m.timeouts, _ms(m.p95_latency), _ms(m.tail_latency)]
        )
    f = metrics.fleet
    rows.append(
        ["fleet", sum(metrics.routed), f.avg_power_watts, f.energy_joules,
         f.completed, f.timeouts, _ms(f.p95_latency), _ms(f.tail_latency)]
    )
    print(
        f"fleet: {args.nodes} nodes x {cores} cores, app={args.app}, "
        f"policy={args.policy}, routing={args.routing}, seed={seed}"
    )
    print(
        format_table(
            ["node", "routed", "power(W)", "energy(J)", "completed",
             "timeouts", "p95(ms)", "p99(ms)"],
            rows,
            "{:.2f}",
        )
    )
    if cap is not None:
        verdict = "ok" if metrics.cap_ok else "EXCEEDED"
        print(
            f"power cap: budget={cap:.1f} W, "
            f"peak window={metrics.max_window_power:.1f} W, "
            f"throttled windows={metrics.throttled_windows} [{verdict}]"
        )
    if args.trace_out:
        print(f"trace written to {args.trace_out}")
    return 0


def _cmd_chaos(args) -> int:
    from .analysis.reporting import format_table
    from .cluster import ClusterConfig, ClusterSim, fleet_power_budget, fleet_trace
    from .experiments.fleet import FLEET_LOAD, fleet_dimensions
    from .experiments.scenarios import active_profile, evaluation_trace
    from .faults import standard_chaos_plan
    from .obs import Observability

    profile = active_profile(args.full)
    _, default_cores = fleet_dimensions(profile)
    cores = args.cores if args.cores is not None else default_cores
    seed = args.seed if args.seed is not None else profile.seed
    load = args.load if args.load is not None else FLEET_LOAD
    trace = fleet_trace(
        evaluation_trace(profile), args.app, args.nodes, cores, load=load
    )
    plan = standard_chaos_plan(
        args.intensity,
        args.nodes,
        trace.duration,
        seed=seed,
        retry_budget=args.retry_budget,
        retry_backoff=args.retry_backoff,
        recovery_time=args.recovery,
        drop_in_flight=args.drop_in_flight,
    )
    cap = args.power_cap
    if cap == "auto":
        cap = fleet_power_budget(args.nodes, cores)
    config = ClusterConfig(
        app=args.app,
        num_nodes=args.nodes,
        cores_per_node=cores,
        policy=args.policy,
        routing=args.routing,
        power_cap_watts=cap,
        seed=seed,
        agent_path=args.agent,
        fault_plan=plan,
        health_aware=False if args.no_failover else None,
        stepping=args.stepping,
    )
    obs = None
    if args.trace_out:
        obs = Observability.from_paths(
            trace_out=args.trace_out,
            meta={
                "kind": "chaos",
                "app": args.app,
                "policy": args.policy,
                "routing": args.routing,
                "num_nodes": args.nodes,
                "intensity": args.intensity,
                "failover": not args.no_failover,
                "seed": seed,
            },
            trace_segment_events=args.trace_segment_events,
            trace_compress=args.trace_compress,
            trace_shard_key="node" if args.trace_shard_nodes else None,
        )
    try:
        metrics = ClusterSim(config, trace, obs=obs).run()
    finally:
        if obs is not None:
            obs.close()

    def _ms(seconds: float) -> float:
        return seconds * 1e3

    rows = []
    for node, (m, routed) in enumerate(zip(metrics.node_metrics, metrics.routed)):
        rows.append(
            [node, routed, m.avg_power_watts, m.energy_joules, m.completed,
             m.timeouts, _ms(m.p95_latency), _ms(m.tail_latency),
             metrics.node_availability[node]]
        )
    f = metrics.fleet
    rows.append(
        ["fleet", sum(metrics.routed), f.avg_power_watts, f.energy_joules,
         f.completed, f.timeouts, _ms(f.p95_latency), _ms(f.tail_latency),
         metrics.fleet_availability]
    )
    print(
        f"chaos: {args.nodes} nodes x {cores} cores, app={args.app}, "
        f"policy={args.policy}, routing={args.routing}, "
        f"intensity={args.intensity:g}, "
        f"failover={'off' if args.no_failover else 'on'}, seed={seed}"
    )
    print(
        format_table(
            ["node", "routed", "power(W)", "energy(J)", "completed",
             "timeouts", "p95(ms)", "p99(ms)", "avail"],
            rows,
            "{:.2f}",
        )
    )
    print(
        f"chaos: crashes={metrics.crashes}, "
        f"redispatched={metrics.redispatches}, "
        f"dropped={metrics.dropped_requests}, "
        f"unroutable={metrics.unroutable}, "
        f"partitions={metrics.partitions}, "
        f"availability={metrics.fleet_availability:.3f}, "
        f"sla={'met' if f.sla_met else 'MISS'}"
    )
    if cap is not None:
        verdict = "ok" if metrics.cap_ok else "EXCEEDED"
        print(
            f"power cap: budget={cap:.1f} W, "
            f"peak window={metrics.max_window_power:.1f} W, "
            f"throttled windows={metrics.throttled_windows} [{verdict}]"
        )
    if args.trace_out:
        print(f"trace written to {args.trace_out}")
    return 0


def _cmd_hier(args) -> int:
    from .analysis.reporting import format_table
    from .cluster import ClusterConfig, ClusterSim, fleet_power_budget, fleet_trace
    from .experiments.fleet import fleet_dimensions
    from .experiments.hier import HIER_LOAD
    from .experiments.scenarios import active_profile, evaluation_trace
    from .hier import HierConfig, build_fleet_agent
    from .obs import Observability
    from .parallel.pool import derive_seed

    profile = active_profile(args.full)
    _, default_cores = fleet_dimensions(profile)
    cores = args.cores if args.cores is not None else default_cores
    seed = args.seed if args.seed is not None else profile.seed
    load = args.load if args.load is not None else HIER_LOAD
    trace = fleet_trace(
        evaluation_trace(profile), args.app, args.nodes, cores, load=load
    )
    budget = args.power_budget
    if budget == "auto":
        budget = fleet_power_budget(args.nodes, cores)
    try:
        hier = HierConfig(
            algo=args.algo,
            control=args.control,
            train=not args.eval,
            agent_path=args.agent,
            shared_replay=args.shared_replay,
            fed_avg_every=args.fed_avg_every,
        )
    except ValueError as exc:
        print(f"invalid hier configuration: {exc}", file=sys.stderr)
        return 2
    config = ClusterConfig(
        app=args.app,
        num_nodes=args.nodes,
        cores_per_node=cores,
        policy=args.policy,
        routing=args.routing,
        power_cap_watts=budget,
        seed=seed,
        stepping=args.stepping,
        hier=hier,
    )

    manager = None
    fleet_agent = None
    if args.checkpoint_dir is not None:
        from .checkpoint import CheckpointManager

        manager = CheckpointManager(args.checkpoint_dir, prefix="hier")
        if args.resume:
            record = manager.load_latest()
            if record is None:
                print(
                    f"--resume: no fleet-agent snapshot in "
                    f"{args.checkpoint_dir!r}; starting fresh",
                    file=sys.stderr,
                )
            elif record.meta.get("kind") != "hier-fleet-agent":
                print(
                    f"--resume: newest snapshot in {args.checkpoint_dir!r} "
                    f"is not a fleet-agent checkpoint "
                    f"(kind={record.meta.get('kind')!r})",
                    file=sys.stderr,
                )
                return 2
            else:
                fleet_agent = build_fleet_agent(
                    args.nodes, hier, derive_seed(seed, "hier", "fleet-agent")
                )
                try:
                    fleet_agent.load_state_dict(record.state["fleet_agent"])
                except (KeyError, ValueError) as exc:
                    print(f"--resume: snapshot rejected: {exc}", file=sys.stderr)
                    return 2
                print(
                    f"resumed fleet agent from step {record.step} "
                    f"({record.path})"
                )

    obs = None
    if args.trace_out:
        obs = Observability.from_paths(
            trace_out=args.trace_out,
            meta={
                "kind": "hier",
                "app": args.app,
                "policy": args.policy,
                "routing": args.routing,
                "num_nodes": args.nodes,
                "algo": args.algo,
                "control": args.control,
                "train": not args.eval,
                "seed": seed,
            },
            trace_segment_events=args.trace_segment_events,
            trace_compress=args.trace_compress,
            trace_shard_key="node" if args.trace_shard_nodes else None,
        )
    sim = ClusterSim(config, trace, obs=obs, fleet_agent=fleet_agent)
    try:
        metrics = sim.run()
    finally:
        if obs is not None:
            obs.close()

    def _ms(seconds: float) -> float:
        return seconds * 1e3

    rows = []
    for node, (m, routed) in enumerate(zip(metrics.node_metrics, metrics.routed)):
        rows.append(
            [node, routed, m.avg_power_watts, m.energy_joules, m.completed,
             m.timeouts, _ms(m.p95_latency), _ms(m.tail_latency)]
        )
    f = metrics.fleet
    rows.append(
        ["fleet", sum(metrics.routed), f.avg_power_watts, f.energy_joules,
         f.completed, f.timeouts, _ms(f.p95_latency), _ms(f.tail_latency)]
    )
    print(
        f"hier: {args.nodes} nodes x {cores} cores, app={args.app}, "
        f"policy={args.policy}, routing={args.routing}, "
        f"algo={args.algo}, control={args.control}, "
        f"mode={'eval' if args.eval else 'train'}, seed={seed}"
    )
    print(
        format_table(
            ["node", "routed", "power(W)", "energy(J)", "completed",
             "timeouts", "p95(ms)", "p99(ms)"],
            rows,
            "{:.2f}",
        )
    )
    verdict = "ok" if metrics.cap_ok else "EXCEEDED"
    print(
        f"power cap: budget={budget:.1f} W, "
        f"peak window={metrics.max_window_power:.1f} W, "
        f"throttled windows={metrics.throttled_windows} [{verdict}]"
    )
    print(
        f"fleet agent: decisions={metrics.hier_decisions}, "
        f"updates={metrics.hier_updates}, "
        f"fed_rounds={metrics.hier_fed_rounds}, "
        f"sla={'met' if f.sla_met else 'MISS'}"
    )
    if manager is not None:
        step = (manager.latest_step() or 0) + 1
        path = manager.save(
            {"fleet_agent": sim.fleet_agent.state_dict()},
            step=step,
            meta={
                "kind": "hier-fleet-agent",
                "num_nodes": args.nodes,
                "algo": args.algo,
                "control": args.control,
            },
        )
        print(f"fleet-agent checkpoint written to {path}")
    if args.save_agent:
        sim.fleet_agent.save(args.save_agent)
        print(f"fleet-agent parameters saved to {args.save_agent}")
    if args.trace_out:
        print(f"trace written to {args.trace_out}")
    return 0


def _cmd_soak(args) -> int:
    from .experiments.soak import render_soak, run_soak

    intensities = []
    for chunk in args.intensities.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        try:
            x = float(chunk)
        except ValueError:
            print(f"--intensities expects numbers, got {chunk!r}", file=sys.stderr)
            return 2
        if x < 0:
            print(f"--intensities must be >= 0, got {x:g}", file=sys.stderr)
            return 2
        intensities.append(x)
    if not intensities:
        print("--intensities is empty", file=sys.stderr)
        return 2
    result = run_soak(
        app_name=args.app,
        intensities=intensities,
        seed=args.seed,
        full=args.full,
        use_cache=not args.no_cache,
        trace_dir=args.trace_dir,
        policy=args.policy,
    )
    print(
        f"control-soak: app={result['app']}, profile={result['profile']}, "
        f"policy={result['policy']}, seed={result['seed']}"
    )
    print(render_soak(result))
    if args.trace_dir:
        print(f"per-cell traces written to {args.trace_dir}")
    return 0


def _node_arg(value: str):
    """argparse type for ``--node``: trace node ids are ints when they can be."""
    try:
        return int(value)
    except ValueError:
        return value


def _cmd_trace(args) -> int:
    from .obs import (
        TraceError,
        render_fleet_summary,
        render_summary,
        summarize_fleet_trace,
        summarize_trace,
    )

    try:
        if args.group_by == "node":
            print(render_fleet_summary(summarize_fleet_trace(args.file, strict=not args.lenient)))
            return 0
        summary = summarize_trace(args.file, strict=not args.lenient)
    except (TraceError, OSError) as exc:
        print(f"cannot summarize {args.file}: {exc}", file=sys.stderr)
        return 1
    print(render_summary(summary, limit=args.limit))
    return 0


def _cmd_trace_slice(args) -> int:
    """Shared worker for ``trace tail`` and ``trace query``: JSONL out."""
    import json

    from .obs import TraceError, trace_query, trace_tail

    filters = dict(
        kind=args.kind,
        node=args.node,
        since=args.since,
        until=args.until,
        strict=not args.lenient,
    )
    try:
        if args.action == "tail":
            events = trace_tail(args.file, n=args.last, **filters)
        else:
            events = trace_query(args.file, limit=args.limit, **filters)
        for event in events:
            print(json.dumps(event))
    except (TraceError, OSError, ValueError) as exc:
        print(f"cannot {args.action} {args.file}: {exc}", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="deeppower", description=__doc__)
    sub = p.add_subparsers(dest="command", required=True)

    sp = sub.add_parser("list", help="list available paper experiments")
    sp.set_defaults(fn=_cmd_list)

    sp = sub.add_parser("experiment", help="run one paper experiment by id")
    sp.add_argument("id", help="experiment id, e.g. fig7, table2")
    sp.add_argument("--full", action="store_true", help="full-scale profile")
    sp.add_argument(
        "--checkpoint-dir", default=None,
        help="snapshot experiment progress here (kill/resume safe)",
    )
    sp.add_argument(
        "--resume", action="store_true",
        help="resume from the newest valid snapshot in --checkpoint-dir",
    )
    sp.add_argument(
        "--jobs", type=_jobs_arg, default=1,
        help="fan independent runs over N worker processes (N >= 1); "
        "results are bitwise identical to --jobs 1",
    )
    sp.add_argument(
        "--no-cache", action="store_true",
        help="bypass the content-addressed run-result cache under REPRO_CACHE",
    )
    sp.add_argument(
        "--trace-dir", type=_out_dir_arg, default=None,
        help="write a JSONL observability trace per grid cell into this "
        "directory (traced cells always execute, bypassing the result cache)",
    )
    sp.set_defaults(fn=_cmd_experiment)

    sp = sub.add_parser("compare", help="compare policies on one app")
    sp.add_argument("--app", default="xapian")
    sp.add_argument("--policies", default="baseline,retail,gemini")
    sp.add_argument("--seed", type=int, default=1)
    sp.add_argument("--full", action="store_true")
    sp.set_defaults(fn=_cmd_compare)

    sp = sub.add_parser("train", help="train a DeepPower agent and save it")
    sp.add_argument("--app", default="xapian")
    sp.add_argument("--episodes", type=int, default=0, help="0 = profile default")
    sp.add_argument("--seed", type=int, default=7)
    sp.add_argument("--out", default="deeppower-agent.npz")
    sp.add_argument("--full", action="store_true")
    sp.add_argument(
        "--checkpoint-dir", default=None,
        help="autosave full training state here (crash/kill safe)",
    )
    sp.add_argument(
        "--checkpoint-every", type=_positive_int, default=1,
        help="episodes between autosaves (default: every episode)",
    )
    sp.add_argument(
        "--resume", action="store_true",
        help="resume training from the newest valid snapshot",
    )
    sp.add_argument(
        "--trace-out", type=_out_file_arg, default=None,
        help="write a schema-versioned JSONL observability trace of the "
        "whole training run here",
    )
    sp.add_argument(
        "--metrics-out", type=_out_file_arg, default=None,
        help="write the final metrics-registry snapshot (JSON) here",
    )
    sp.add_argument(
        "--profile-spans", action="store_true",
        help="time instrumented hot paths (engine loop, controller tick, "
        "agent update) and include span stats in the trace/metrics outputs",
    )
    sp.set_defaults(fn=_cmd_train)

    sp = sub.add_parser(
        "fleet", help="run a multi-node cluster under one arrival stream"
    )
    sp.add_argument("--app", default="xapian")
    sp.add_argument(
        "--nodes", type=_positive_int, default=8,
        help="number of simulated machines (default: 8)",
    )
    sp.add_argument(
        "--cores", type=_positive_int, default=None,
        help="cores per node (default: profile-sized)",
    )
    sp.add_argument(
        "--policy", default="baseline",
        help="per-node power policy: baseline, retail, gemini, deeppower",
    )
    sp.add_argument(
        "--routing", default="round-robin",
        choices=["round-robin", "jsq", "power-aware"],
        help="dispatcher routing policy",
    )
    sp.add_argument(
        "--power-cap", type=_power_cap_arg, default=None,
        help="global fleet power budget in watts, or 'auto' for a budget at "
        "70%% of the fleet's controllable range (default: uncapped)",
    )
    sp.add_argument(
        "--load", type=_positive_float, default=None,
        help="mean fleet utilisation the arrival trace is scaled to "
        "(default: the fleet experiment's load)",
    )
    sp.add_argument("--seed", type=int, default=None, help="default: profile seed")
    sp.add_argument(
        "--agent", default=None,
        help="trained agent .npz for --policy deeppower (default: untrained)",
    )
    sp.add_argument("--full", action="store_true", help="full-scale profile")
    sp.add_argument(
        "--stepping", default="auto", choices=["auto", "batched", "scalar"],
        help="fleet stepping strategy: 'batched' vectorises controller "
        "ticks and dispatch across nodes, 'scalar' forces the per-node "
        "path, 'auto' (default) batches at >= 16 nodes; results are "
        "bitwise identical either way",
    )
    sp.add_argument(
        "--trace-out", type=_out_file_arg, default=None,
        help="write a node-tagged JSONL fleet trace here "
        "(inspect with: deeppower trace summarize FILE --group-by node)",
    )
    _add_trace_layout_args(sp)
    sp.set_defaults(fn=_cmd_fleet)

    sp = sub.add_parser(
        "chaos",
        help="run the fleet under a seeded fault plan (crashes, rack "
        "failures, telemetry partitions) with failover dispatch",
    )
    sp.add_argument("--app", default="xapian")
    sp.add_argument(
        "--nodes", type=_positive_int, default=4,
        help="number of simulated machines (default: 4)",
    )
    sp.add_argument(
        "--cores", type=_positive_int, default=None,
        help="cores per node (default: profile-sized)",
    )
    sp.add_argument(
        "--policy", default="retail",
        help="per-node power policy: baseline, retail, gemini, deeppower",
    )
    sp.add_argument(
        "--routing", default="round-robin",
        choices=["round-robin", "jsq", "power-aware"],
        help="dispatcher routing policy",
    )
    sp.add_argument(
        "--intensity", type=_positive_float, default=1.0,
        help="fault-plan intensity scale (> 0; scales outage durations and "
        "per-node DVFS fault rates)",
    )
    sp.add_argument(
        "--retry-budget", type=_nonneg_int, default=2,
        help="re-dispatch attempts per evacuated request before it is "
        "dropped (>= 0; default: 2)",
    )
    sp.add_argument(
        "--retry-backoff", type=_positive_float, default=0.05,
        help="base re-dispatch delay in seconds, doubled per retry "
        "(> 0; default: 0.05)",
    )
    sp.add_argument(
        "--recovery", type=_nonneg_float, default=None,
        help="seconds a restarted node stays frequency-capped in the "
        "'recovering' state (default: 5%% of the trace)",
    )
    sp.add_argument(
        "--drop-in-flight", action="store_true",
        help="drop requests caught on a crashing node instead of "
        "re-dispatching them",
    )
    sp.add_argument(
        "--no-failover", action="store_true",
        help="ablation: disable health-aware dispatch so routers keep "
        "addressing down nodes",
    )
    sp.add_argument(
        "--power-cap", type=_power_cap_arg, default=None,
        help="global fleet power budget in watts, or 'auto' (default: "
        "uncapped)",
    )
    sp.add_argument(
        "--load", type=_positive_float, default=None,
        help="mean fleet utilisation the arrival trace is scaled to "
        "(default: the fleet experiment's load)",
    )
    sp.add_argument("--seed", type=int, default=None, help="default: profile seed")
    sp.add_argument(
        "--agent", default=None,
        help="trained agent .npz for --policy deeppower (default: untrained)",
    )
    sp.add_argument("--full", action="store_true", help="full-scale profile")
    sp.add_argument(
        "--stepping", default="auto", choices=["auto", "batched", "scalar"],
        help="fleet stepping strategy: 'batched' vectorises controller "
        "ticks and dispatch across nodes, 'scalar' forces the per-node "
        "path, 'auto' (default) batches at >= 16 nodes; results are "
        "bitwise identical either way",
    )
    sp.add_argument(
        "--trace-out", type=_out_file_arg, default=None,
        help="write a node-tagged JSONL chaos trace here, including "
        "node-down/node-up/redispatch events "
        "(inspect with: deeppower trace summarize FILE --group-by node)",
    )
    _add_trace_layout_args(sp)
    sp.set_defaults(fn=_cmd_chaos)

    from .hier.config import HIER_ALGOS, HIER_CONTROLS

    sp = sub.add_parser(
        "hier",
        help="run a fleet whose watt budget (and/or routing weights) is "
        "apportioned by a learned fleet-level agent instead of the "
        "heuristic coordinator",
    )
    sp.add_argument("--app", default="xapian")
    sp.add_argument(
        "--nodes", type=_positive_int, default=4,
        help="number of simulated machines (default: 4)",
    )
    sp.add_argument(
        "--cores", type=_positive_int, default=None,
        help="cores per node (default: profile-sized)",
    )
    sp.add_argument(
        "--policy", default="baseline",
        help="per-node power policy: baseline, retail, gemini, deeppower",
    )
    sp.add_argument(
        "--routing", default="power-aware",
        choices=["round-robin", "jsq", "power-aware"],
        help="dispatcher routing policy (default: power-aware)",
    )
    sp.add_argument(
        "--power-budget", type=_power_cap_arg, default="auto",
        help="global fleet power budget in watts the agent apportions, or "
        "'auto' (default) for a budget at 70%% of the fleet's "
        "controllable range",
    )
    sp.add_argument(
        "--algo", default="ddpg", choices=list(HIER_ALGOS),
        help="upper-level learner (default: ddpg)",
    )
    sp.add_argument(
        "--control", default="budget", choices=list(HIER_CONTROLS),
        help="what the agent's action controls: per-node watt budgets, "
        "dispatcher routing weights, or both (default: budget)",
    )
    sp.add_argument(
        "--eval", action="store_true",
        help="run the actor frozen: no exploration noise, no learner "
        "updates (default: train online during the run)",
    )
    sp.add_argument(
        "--agent", default=None,
        help="fleet-agent parameters .npz to preload (written by "
        "--save-agent)",
    )
    sp.add_argument(
        "--save-agent", type=_out_file_arg, default=None,
        help="save the fleet agent's network parameters here after the "
        "run (the --agent eval artifact)",
    )
    sp.add_argument(
        "--shared-replay", action="store_true",
        help="pool the node agents' transitions through one shared replay "
        "buffer (--policy deeppower only; ignored otherwise)",
    )
    sp.add_argument(
        "--fed-avg-every", type=_nonneg_int, default=0,
        help="coordination windows between federated parameter averages "
        "across node agents (0 disables; requires --shared-replay)",
    )
    sp.add_argument(
        "--load", type=_positive_float, default=None,
        help="mean fleet utilisation the arrival trace is scaled to "
        "(default: the hier experiment's load)",
    )
    sp.add_argument("--seed", type=int, default=None, help="default: profile seed")
    sp.add_argument("--full", action="store_true", help="full-scale profile")
    sp.add_argument(
        "--stepping", default="auto", choices=["auto", "batched", "scalar"],
        help="fleet stepping strategy: 'batched' vectorises controller "
        "ticks and dispatch across nodes, 'scalar' forces the per-node "
        "path, 'auto' (default) batches at >= 16 nodes; results are "
        "bitwise identical either way",
    )
    sp.add_argument(
        "--checkpoint-dir", default=None,
        help="write the fleet agent's complete learner state (networks, "
        "optimisers, replay, noise, RNG) here after the run",
    )
    sp.add_argument(
        "--resume", action="store_true",
        help="preload the newest fleet-agent snapshot from "
        "--checkpoint-dir and continue training from it",
    )
    sp.add_argument(
        "--trace-out", type=_out_file_arg, default=None,
        help="write a node-tagged JSONL trace here, including "
        "coordinator-decision events "
        "(inspect with: deeppower trace summarize FILE --group-by node)",
    )
    _add_trace_layout_args(sp)
    sp.set_defaults(fn=_cmd_hier)

    sp = sub.add_parser(
        "soak",
        help="soak the DeepPower control loop over a lossy message bus, "
        "sweeping fault intensity against a no-degraded-mode ablation",
    )
    sp.add_argument("--app", default="xapian")
    sp.add_argument(
        "--intensities", default="0,0.5,1",
        help="comma-separated bus-fault intensities (>= 0; 0 doubles as "
        "the direct-vs-bus bitwise identity check)",
    )
    sp.add_argument(
        "--seed", type=int, default=7,
        help="seeds both the trained agent and the bus fault plan",
    )
    sp.add_argument(
        "--policy", choices=("reactive", "trained"), default="reactive",
        help="top-layer policy: 'reactive' (deterministic load-following; "
        "isolates the control-plane variable) or 'trained' (cached DDPG)",
    )
    sp.add_argument("--full", action="store_true", help="full-scale profile")
    sp.add_argument(
        "--no-cache", action="store_true",
        help="retrain the agent instead of reusing the cached one "
        "(--policy trained only)",
    )
    sp.add_argument(
        "--trace-dir", type=_out_dir_arg, default=None,
        help="write one JSONL trace per soak cell into this directory "
        "(bus-drop / stale-window / cmd-retry / deadline-miss events "
        "included; inspect with: deeppower trace summarize FILE)",
    )
    sp.set_defaults(fn=_cmd_soak)

    sp = sub.add_parser(
        "trace",
        help="inspect a JSONL observability trace (plain, gzip/zstd "
        "compressed, or segmented — all read transparently)",
    )
    tsub = sp.add_subparsers(dest="action", required=True)

    def _trace_common(tp: argparse.ArgumentParser) -> None:
        tp.add_argument("file", help="path to a .trace.jsonl file (or index)")
        strictness = tp.add_mutually_exclusive_group()
        strictness.add_argument(
            "--strict", action="store_true",
            help="fail on malformed, truncated or empty traces (the "
            "default; spelled out for scripts that want to be explicit)",
        )
        strictness.add_argument(
            "--lenient", action="store_true",
            help="tolerate truncated/unfinished/empty traces (e.g. a "
            ".part file from a crashed run): use what parsed, warn "
            "about the rest",
        )

    def _trace_filters(tp: argparse.ArgumentParser) -> None:
        tp.add_argument(
            "--kind", default=None,
            help="only events of this kind (e.g. drl-step, node-window)",
        )
        tp.add_argument(
            "--node", type=_node_arg, default=None,
            help="only events tagged with this node id; on a node-sharded "
            "trace other nodes' segment files are skipped via the index",
        )
        tp.add_argument(
            "--since", type=float, default=None,
            help="only events with virtual timestamp t >= SINCE; segments "
            "wholly before it are skipped via the index",
        )
        tp.add_argument(
            "--until", type=float, default=None,
            help="only events with virtual timestamp t <= UNTIL; segments "
            "wholly after it are skipped via the index",
        )

    tp = tsub.add_parser(
        "summarize", help="rebuild per-interval / per-node tables"
    )
    _trace_common(tp)
    tp.add_argument(
        "--limit", type=int, default=None,
        help="show only the last N per-interval rows",
    )
    tp.add_argument(
        "--group-by", default=None, choices=["node"],
        help="aggregate a fleet trace per node instead of per interval",
    )
    tp.set_defaults(fn=_cmd_trace)

    tp = tsub.add_parser(
        "tail", help="print the last N matching events as JSON lines"
    )
    _trace_common(tp)
    tp.add_argument(
        "-n", "--last", type=_positive_int, default=10,
        help="number of trailing events to print (default: 10)",
    )
    _trace_filters(tp)
    tp.set_defaults(fn=_cmd_trace_slice)

    tp = tsub.add_parser(
        "query", help="print matching events in trace order as JSON lines"
    )
    _trace_common(tp)
    _trace_filters(tp)
    tp.add_argument(
        "--limit", type=_positive_int, default=None,
        help="stop after N matching events (default: all)",
    )
    tp.set_defaults(fn=_cmd_trace_slice)
    return p


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _validate_resume(parser, args)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
