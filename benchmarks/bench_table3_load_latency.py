"""Table 3: unmanaged p99 latency at 20/50/70 % load per application."""

from conftest import run_once

from repro.experiments.table3_load_latency import render_table3, run_table3


def test_table3_p99_vs_load(benchmark, emit):
    results = run_once(benchmark, run_table3)
    emit("Table 3 — p99 latency (ms) at static loads", render_table3(results))

    from repro.experiments.scenarios import active_profile

    # The smoke profile's 4-core socket queues burstier than the full
    # 8-core one, so the absolute envelope is profile-dependent; the
    # paper-shape assertions (growth with load, img-dnn flatness) are not.
    envelope = 1.4 if active_profile().is_full else 2.2
    for name, row in results.items():
        p99 = row.p99_ms
        # Queueing grows the tail with load; allow small-sample noise for
        # the near-deterministic app at low loads.
        assert p99[0.7] >= p99[0.2] * 0.95, name
        # These loads remain servable (no runaway saturation).
        assert p99[0.7] <= row.sla_ms * envelope, name

    # Img-dnn's deterministic service keeps its tail far below the SLA at
    # every load (paper: 2.30 / 2.30 / 2.48 ms vs SLA 5), unlike the
    # long-tailed apps, whose p99 sits near their SLA.
    img = results["img-dnn"]
    assert all(v <= img.sla_ms * 0.7 for v in img.p99_ms.values())
    for name in ("xapian", "masstree", "moses", "sphinx"):
        row = results[name]
        assert row.p99_ms[0.7] / row.sla_ms > img.p99_ms[0.7] / img.sla_ms
