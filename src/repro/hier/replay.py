"""Transition pooling across node agents: shared replay + federated averaging.

Per-node DeepPower agents each learn from their own experience; a fleet
of N nodes under one dispatcher sees N nearly-i.i.d. draws from the same
workload, so pooling transitions multiplies the effective sample rate by
N without changing any single agent's control loop.  :class:`SharedReplay`
implements that as a drop-in: ``bind(agent, node_id)`` swaps the agent's
private :class:`~repro.rl.replay.ReplayBuffer` for a view onto one shared
pool.  Pushes land in the shared pool (tagged per node for accounting),
and sampling uses the pool's *own* seed-namespaced RNG
(``derive_seed(seed, "hier", "shared-replay")``) rather than the caller's
— so which node happens to trigger an update never perturbs any other
node's exploration stream, and pooled learning stays bit-reproducible.

:func:`federated_average` is the companion parameter step: periodically
set every node agent's networks to the across-fleet mean (FedAvg with
uniform weights — each node contributes equal transition volume under a
balanced dispatcher).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..rl.replay import ReplayBuffer

__all__ = ["SharedReplay", "federated_average"]

#: Module attributes averaged by :func:`federated_average`, when present.
_FED_MODULES = ("actor", "actor_target", "critic", "critic_target", "policy")


class _NodeView:
    """One node agent's handle onto the shared pool.

    Quacks like the :class:`~repro.rl.replay.ReplayBuffer` the agent was
    constructed with: ``push``/``sample``/``len``/``total_pushed`` and the
    ``state_dict`` round trip all work, but resolve against the shared
    buffer.  ``sample`` deliberately ignores the caller's RNG in favour of
    the pool's namespaced stream (see module docstring).
    """

    def __init__(self, shared: "SharedReplay", node_id: int) -> None:
        self._shared = shared
        self.node_id = int(node_id)

    def push(self, state, action, reward, next_state, done=False) -> None:
        self._shared.buffer.push(state, action, reward, next_state, done)
        self._shared.pushed_by[self.node_id] += 1

    def push_transition(self, tr) -> None:
        self.push(tr.state, tr.action, tr.reward, tr.next_state, tr.done)

    def sample(self, batch_size: int, rng: np.random.Generator):
        del rng  # the pool's stream keeps pooled sampling node-independent
        return self._shared.buffer.sample(batch_size, self._shared.rng)

    def __len__(self) -> int:
        return len(self._shared.buffer)

    def __getattr__(self, name: str):
        # capacity / total_pushed / full / clear / state_dict / ... —
        # everything else resolves against the shared buffer.
        return getattr(self._shared.buffer, name)


class SharedReplay:
    """One replay pool shared by every node agent in the fleet.

    Parameters
    ----------
    capacity, state_dim, action_dim:
        Pool geometry; must match the node agents' transition shapes
        (``bind`` checks).
    seed:
        Already hier-namespaced sampling seed
        (``derive_seed(fleet_seed, "hier", "shared-replay")``).
    """

    def __init__(
        self, capacity: int, state_dim: int, action_dim: int, seed: int
    ) -> None:
        self.buffer = ReplayBuffer(capacity, state_dim, action_dim)
        self.seed = int(seed)
        self.rng = np.random.default_rng(self.seed)
        self.pushed_by: Dict[int, int] = {}
        self.bound_agents: List[object] = []

    def bind(self, agent, node_id: int) -> None:
        """Swap ``agent``'s private replay for a view onto this pool."""
        private = getattr(agent, "replay", None)
        if private is not None and (
            private.state_dim != self.buffer.state_dim
            or private.action_dim != self.buffer.action_dim
        ):
            raise ValueError(
                f"agent transition shape ({private.state_dim}, "
                f"{private.action_dim}) does not match the shared pool "
                f"({self.buffer.state_dim}, {self.buffer.action_dim})"
            )
        self.pushed_by.setdefault(int(node_id), 0)
        self.bound_agents.append(agent)
        agent.replay = _NodeView(self, node_id)

    # ------------------------------------------------------------- persistence

    def state_dict(self) -> Dict:
        from ..sim.rng import generator_state

        return {
            "buffer": self.buffer.state_dict(),
            "rng": generator_state(self.rng),
            "pushed_by": dict(self.pushed_by),
        }

    def load_state_dict(self, state: Dict) -> None:
        from ..sim.rng import restore_generator

        self.buffer.load_state_dict(state["buffer"])
        restore_generator(self.rng, state["rng"])
        self.pushed_by = {int(k): int(v) for k, v in state["pushed_by"].items()}


def federated_average(agents: Sequence) -> int:
    """Set every agent's networks to the across-fleet parameter mean.

    Uniform-weight FedAvg over whichever of ``actor`` / ``actor_target`` /
    ``critic`` / ``critic_target`` / ``policy`` modules the agents carry
    (all agents must carry the same set).  Returns the number of modules
    averaged.  A single agent (or none) is a no-op.
    """
    agents = list(agents)
    if len(agents) < 2:
        return 0
    names = [n for n in _FED_MODULES if getattr(agents[0], n, None) is not None]
    averaged = 0
    for name in names:
        flats = []
        for agent in agents:
            module = getattr(agent, name, None)
            if module is None:
                raise ValueError(
                    f"cannot federate: some agents lack module {name!r}"
                )
            flats.append(module.get_flat())
        mean = np.mean(np.stack(flats, axis=0), axis=0)
        for agent in agents:
            getattr(agent, name).set_flat(mean)
        averaged += 1
    return averaged
