"""Exploration noise processes for continuous-action agents.

The paper adds Gaussian noise ``N(mu=0.3, sigma=1)`` to the actor output
during training (§4.6): the positive mean biases early exploration toward
high frequencies (avoiding queue blow-up while the policy is random), and
the large variance covers the whole [0, 1] action range.  A decay schedule
is provided so evaluation-time noise can anneal away, and an
Ornstein–Uhlenbeck process is included as the classic DDPG alternative.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["GaussianNoise", "OrnsteinUhlenbeckNoise"]


class GaussianNoise:
    """IID Gaussian action noise with optional multiplicative decay.

    Parameters
    ----------
    dim:
        Action dimensionality.
    mu, sigma:
        Noise mean / stdev (paper defaults 0.3 and 1.0).
    decay:
        Per-``step_decay()`` multiplier applied to sigma *and* mu, so the
        optimistic bias anneals along with the exploration magnitude.
    min_sigma:
        Floor on sigma after decay.
    """

    def __init__(
        self,
        dim: int,
        rng: np.random.Generator,
        mu: float = 0.3,
        sigma: float = 1.0,
        decay: float = 1.0,
        min_sigma: float = 0.05,
    ) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        if sigma < 0 or min_sigma < 0:
            raise ValueError("sigma values must be >= 0")
        if not 0 < decay <= 1:
            raise ValueError("decay must be in (0, 1]")
        self.dim = dim
        self.rng = rng
        self.mu0, self.sigma0 = float(mu), float(sigma)
        self.mu, self.sigma = float(mu), float(sigma)
        self.decay = float(decay)
        self.min_sigma = float(min_sigma)

    def sample(self) -> np.ndarray:
        """One noise vector."""
        return self.mu + self.sigma * self.rng.standard_normal(self.dim)

    def step_decay(self) -> None:
        """Anneal the noise (call once per agent step or episode)."""
        if self.decay < 1.0:
            self.sigma = max(self.min_sigma, self.sigma * self.decay)
            self.mu = self.mu * self.decay

    def reset(self) -> None:
        """Restore the initial noise parameters."""
        self.mu, self.sigma = self.mu0, self.sigma0

    def state_dict(self) -> Dict:
        """Snapshot of the annealing state (the RNG is owned by the agent)."""
        return {"mu": self.mu, "sigma": self.sigma, "mu0": self.mu0, "sigma0": self.sigma0}

    def load_state_dict(self, state: Dict) -> None:
        self.mu = float(state["mu"])
        self.sigma = float(state["sigma"])
        self.mu0 = float(state["mu0"])
        self.sigma0 = float(state["sigma0"])


class OrnsteinUhlenbeckNoise:
    """Temporally correlated OU noise (Lillicrap et al. 2015 default).

    ``dx = theta * (mu - x) dt + sigma * sqrt(dt) * N(0, 1)``

    ``decay`` follows the same contract as :class:`GaussianNoise`: each
    ``step_decay()`` multiplies sigma by it, floored at ``min_sigma``
    (the OU position ``x`` is untouched — only the diffusion magnitude
    anneals).  The default ``decay=1.0`` keeps the historical
    constant-sigma behaviour.
    """

    def __init__(
        self,
        dim: int,
        rng: np.random.Generator,
        mu: float = 0.0,
        theta: float = 0.15,
        sigma: float = 0.2,
        dt: float = 1.0,
        decay: float = 1.0,
        min_sigma: float = 0.05,
    ) -> None:
        if dim <= 0:
            raise ValueError("dim must be positive")
        if theta < 0 or sigma < 0 or dt <= 0:
            raise ValueError("invalid OU parameters")
        if not 0 < decay <= 1:
            raise ValueError("decay must be in (0, 1]")
        if min_sigma < 0:
            raise ValueError("min_sigma must be >= 0")
        self.dim = dim
        self.rng = rng
        self.mu = float(mu)
        self.theta = float(theta)
        self.sigma0 = float(sigma)
        self.sigma = float(sigma)
        self.dt = float(dt)
        self.decay = float(decay)
        self.min_sigma = float(min_sigma)
        self._x = np.full(dim, self.mu)

    def sample(self) -> np.ndarray:
        dx = self.theta * (self.mu - self._x) * self.dt + self.sigma * np.sqrt(
            self.dt
        ) * self.rng.standard_normal(self.dim)
        self._x = self._x + dx
        return self._x.copy()

    def step_decay(self) -> None:
        """Anneal the diffusion sigma (same contract as GaussianNoise).

        Was a silent no-op before: an OU-configured agent with a decay
        schedule never actually annealed its exploration.
        """
        if self.decay < 1.0:
            self.sigma = max(self.min_sigma, self.sigma * self.decay)

    def reset(self) -> None:
        """Restore the initial position and diffusion magnitude."""
        self._x = np.full(self.dim, self.mu)
        self.sigma = self.sigma0

    def state_dict(self) -> Dict:
        """Snapshot of the process position and annealing state."""
        return {"x": self._x.copy(), "sigma": self.sigma, "sigma0": self.sigma0}

    def load_state_dict(self, state: Dict) -> None:
        x = np.asarray(state["x"], dtype=np.float64)
        if x.shape != (self.dim,):
            raise ValueError(f"OU snapshot has dim {x.shape}, process has {self.dim}")
        self._x = x.copy()
        # Older snapshots predate sigma annealing; keep the live values.
        if "sigma" in state:
            self.sigma = float(state["sigma"])
            self.sigma0 = float(state.get("sigma0", self.sigma0))
