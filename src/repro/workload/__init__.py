"""Latency-critical workload models: requests, service times, apps, traces."""

from .apps import APP_NAMES, PAPER_APPS, SIM_APPS, AppSpec, get_app
from .arrivals import OpenLoopSource
from .burst import ClosedLoopSource, mmpp_trace
from .request import Request
from .service_time import (
    FEATURE_DIM,
    DeterministicService,
    LognormalCorrelatedService,
    ServiceModel,
)
from .trace import WorkloadTrace, constant_trace, diurnal_trace, synthesize_month

__all__ = [
    "Request",
    "ServiceModel",
    "LognormalCorrelatedService",
    "DeterministicService",
    "FEATURE_DIM",
    "AppSpec",
    "PAPER_APPS",
    "SIM_APPS",
    "APP_NAMES",
    "get_app",
    "WorkloadTrace",
    "synthesize_month",
    "diurnal_trace",
    "constant_trace",
    "OpenLoopSource",
    "ClosedLoopSource",
    "mmpp_trace",
]
