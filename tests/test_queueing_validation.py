"""Analytic queueing models + validation of the simulator against them.

The M/M/c cross-check is the strongest correctness test in the suite: it
exercises the arrival process, FIFO queue, worker pool, frequency-scaled
execution and the latency bookkeeping simultaneously against closed-form
theory.
"""

import numpy as np
import pytest

from repro.analysis import MmcQueue, erlang_c, mdc_mean_wait, mg1_mean_wait
from repro.cpu import Cpu
from repro.server import Server
from repro.sim import Engine, RngRegistry
from repro.workload import OpenLoopSource, Request, constant_trace
from repro.workload.apps import AppSpec
from repro.workload.service_time import ServiceModel


class _ExponentialService(ServiceModel):
    """Exponential work with unit-variance features (M/M/c test double)."""

    def __init__(self, mean_work: float):
        self._mean = mean_work

    def sample(self, rng):
        return float(rng.exponential(self._mean)), rng.standard_normal(3)

    def sample_batch(self, rng, n):
        return rng.exponential(self._mean, n), rng.standard_normal((n, 3))

    def expected_work(self) -> float:
        return self._mean


class TestErlangC:
    def test_mm1_reduces_to_rho(self):
        for rho in (0.1, 0.5, 0.9):
            assert erlang_c(1, rho) == pytest.approx(rho)

    def test_more_servers_less_waiting(self):
        # same utilization, more servers -> less queueing
        assert erlang_c(8, 0.7 * 8) < erlang_c(2, 0.7 * 2)

    def test_zero_load(self):
        assert erlang_c(4, 0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            erlang_c(0, 0.0)
        with pytest.raises(ValueError):
            erlang_c(2, 2.0)


class TestMmcFormulas:
    def test_mm1_mean_wait_closed_form(self):
        # Wq = rho / (mu - lambda) for M/M/1
        q = MmcQueue(arrival_rate=0.5, service_rate=1.0, servers=1)
        assert q.mean_wait == pytest.approx(0.5 / 0.5)
        assert q.mean_sojourn == pytest.approx(q.mean_wait + 1.0)

    def test_littles_law(self):
        q = MmcQueue(6.0, 1.0, 8)
        assert q.mean_queue_length == pytest.approx(6.0 * q.mean_wait)

    def test_unstable_raises(self):
        with pytest.raises(ValueError):
            MmcQueue(2.0, 1.0, 2)

    def test_sojourn_quantile_monotone(self):
        q = MmcQueue(3.0, 1.0, 4)
        qs = [q.sojourn_quantile(p) for p in (0.5, 0.9, 0.99)]
        assert qs == sorted(qs)

    def test_sojourn_median_close_to_mean_order(self):
        q = MmcQueue(1.0, 1.0, 2)
        assert 0.1 < q.sojourn_quantile(0.5) < q.mean_sojourn * 2

    def test_mg1_pollaczek_khinchine(self):
        # Exponential service (scv=1) reduces to M/M/1.
        w_mm1 = MmcQueue(0.5, 1.0, 1).mean_wait
        assert mg1_mean_wait(0.5, 1.0, 1.0) == pytest.approx(w_mm1)
        # Deterministic service halves the wait.
        assert mg1_mean_wait(0.5, 1.0, 0.0) == pytest.approx(w_mm1 / 2)

    def test_mdc_half_of_mmc(self):
        assert mdc_mean_wait(3.0, 1.0, 4) == pytest.approx(
            MmcQueue(3.0, 1.0, 4).mean_wait / 2
        )


class TestSimulatorAgainstTheory:
    def _simulate(self, servers, util, mean_service, duration=400.0, seed=5):
        """Run the real server stack as an M/M/c and collect latencies."""
        engine = Engine()
        rngs = RngRegistry(seed)
        cpu = Cpu(engine, servers)
        cpu.set_all_frequencies(1.0)  # work units == seconds at 1 GHz
        app = AppSpec(
            name="mmc", sla=1e9,  # no timeouts; pure queueing test
            service=_ExponentialService(mean_service),
            contention=0.0,  # theory assumes no interference
        )
        srv = Server(engine, cpu, app)
        lam = util * servers / mean_service
        src = OpenLoopSource(
            engine, constant_trace(lam, duration), app.service, app.sla,
            srv.submit, rngs.get("arr"),
        )
        src.start()
        engine.run_until(duration + 50 * mean_service)
        return np.array(srv.metrics.latencies), lam

    @pytest.mark.parametrize("servers,util", [(1, 0.5), (2, 0.6), (4, 0.7)])
    def test_mmc_mean_sojourn_matches_theory(self, servers, util):
        mean_service = 0.05
        lats, lam = self._simulate(servers, util, mean_service)
        theory = MmcQueue(lam, 1.0 / mean_service, servers)
        assert len(lats) > 3000
        assert lats.mean() == pytest.approx(theory.mean_sojourn, rel=0.08)

    def test_mmc_p95_matches_theory(self):
        mean_service = 0.05
        lats, lam = self._simulate(2, 0.6, mean_service, duration=600.0)
        theory = MmcQueue(lam, 1.0 / mean_service, 2)
        assert np.quantile(lats, 0.95) == pytest.approx(
            theory.sojourn_quantile(0.95), rel=0.1
        )

    def test_frequency_scales_service_exactly(self):
        """At half frequency the same work takes exactly twice as long."""
        for freq, expect in ((2.0, 0.5), (1.0, 1.0)):
            engine = Engine()
            cpu = Cpu(engine, 1)
            cpu.set_all_frequencies(freq)
            app = AppSpec(name="d", sla=1e9, service=_ExponentialService(1.0), contention=0.0)
            srv = Server(engine, cpu, app)
            req = Request(req_id=0, arrival_time=0.0, work=1.0,
                          features=np.zeros(3), sla=1e9)
            srv.submit(req)
            engine.run_until(10.0)
            assert req.service_time == pytest.approx(expect)
