"""Tests for service-time predictors and the Fig 2 machinery."""

import numpy as np
import pytest

from repro.baselines import (
    LinearServicePredictor,
    MlpServicePredictor,
    profile_app,
    relative_rmse_matrix,
)
from repro.workload import get_app


class TestLinearPredictor:
    def test_recovers_linear_relationship(self, rng):
        x = rng.standard_normal((500, 3))
        y = 2.0 * x[:, 0] - 1.0 * x[:, 2] + 50.0
        m = LinearServicePredictor()
        m.fit(x, y)
        assert m.coef_[0] == pytest.approx(2.0, abs=0.01)
        assert m.coef_[2] == pytest.approx(-1.0, abs=0.01)
        assert m.intercept_ == pytest.approx(50.0, abs=0.01)
        assert m.rmse(x, y) < 1e-6

    def test_predictions_floored_positive(self, rng):
        x = rng.standard_normal((100, 2))
        y = -10.0 + 0.0 * x[:, 0]
        m = LinearServicePredictor()
        m.fit(x, y)
        assert (m.predict(x) > 0).all()

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LinearServicePredictor().predict(np.zeros((1, 2)))

    def test_shape_validation(self, rng):
        m = LinearServicePredictor()
        with pytest.raises(ValueError):
            m.fit(np.zeros(5), np.zeros(5))
        with pytest.raises(ValueError):
            m.fit(np.zeros((5, 2)), np.zeros(4))

    def test_predict_one_and_1d_input(self, rng):
        x = rng.standard_normal((100, 3))
        y = x[:, 0] + 3.0
        m = LinearServicePredictor()
        m.fit(x, y)
        v = m.predict_one(np.array([1.0, 0.0, 0.0]))
        assert v == pytest.approx(4.0, abs=0.05)

    def test_residual_std_recorded(self, rng):
        x = rng.standard_normal((1000, 2))
        y = x[:, 0] + 10.0 + rng.standard_normal(1000) * 0.5
        m = LinearServicePredictor()
        m.fit(x, y)
        assert m.residual_std_ == pytest.approx(0.5, abs=0.05)


class TestMlpPredictor:
    def test_fits_nonlinear_better_than_linear(self, rng):
        x = rng.standard_normal((2000, 2))
        y = x[:, 0] ** 2 + 0.1 * rng.standard_normal(2000)
        lin = LinearServicePredictor()
        lin.fit(x, y)
        mlp = MlpServicePredictor(rng, epochs=40)
        mlp.fit(x, y)
        assert mlp.rmse(x, y) < 0.7 * lin.rmse(x, y)

    def test_unfitted_raises(self, rng):
        with pytest.raises(RuntimeError):
            MlpServicePredictor(rng).predict(np.zeros((1, 2)))

    def test_predictions_positive(self, rng):
        x = rng.standard_normal((200, 2))
        y = np.abs(x[:, 0]) + 0.01
        m = MlpServicePredictor(rng, epochs=10)
        m.fit(x, y)
        assert (m.predict(x) > 0).all()


class TestProfileApp:
    def test_returns_matched_shapes(self, rng):
        app = get_app("xapian")
        f, w = profile_app(app, rng, n=100, load=0.5)
        assert f.shape == (100, 3) and w.shape == (100,)

    def test_higher_load_inflates_work(self, rng):
        app = get_app("xapian")
        _, w_lo = profile_app(app, rng, n=5000, load=0.0)
        _, w_hi = profile_app(app, rng, n=5000, load=0.9)
        assert w_hi.mean() > w_lo.mean() * 1.1

    def test_load_validation(self, rng):
        with pytest.raises(ValueError):
            profile_app(get_app("xapian"), rng, load=1.5)


class TestRelativeRmseMatrix:
    def test_diagonal_is_one(self, rng):
        app = get_app("masstree")
        m = relative_rmse_matrix(app, (0.2, 0.5, 0.9), rng, n_train=1500, n_test=1500)
        assert np.allclose(np.diag(m), 1.0)

    def test_offdiagonal_degrades(self, rng):
        """Fig 2's shape: transferring across a large load gap hurts."""
        app = get_app("masstree")
        m = relative_rmse_matrix(app, (0.2, 0.9), rng, n_train=4000, n_test=4000)
        assert m[1, 0] > 1.15  # high-load model on low-load data
        assert max(m[0, 1], m[1, 0]) > 1.2
