"""Tests for the hierarchical fleet-RL layer (ISSUE 10).

Covers the fleet agent (build/act/persistence across all three algos),
the fleet observer, shared replay + federated averaging, the learned
budget coordinator end-to-end through ClusterSim (determinism, cap
compliance, chaos compatibility, checkpoint round trips), and the
off-switch guarantee that ``hier=None`` runs stay untouched.
"""

import json

import numpy as np
import pytest

from repro.cluster.powercap import PowerCapCoordinator
from repro.cluster.sim import (
    ClusterConfig,
    ClusterSim,
    FleetSpec,
    fleet_power_budget,
)
from repro.hier import (
    FEATURES_PER_NODE,
    FleetObserver,
    HierConfig,
    SharedReplay,
    build_fleet_agent,
    federated_average,
    fleet_state_dim,
)
from repro.obs import Observability, render_fleet_summary, summarize_fleet_trace
from repro.parallel.pool import derive_seed
from repro.workload.apps import get_app
from repro.workload.trace import constant_trace

APP = "xapian"


def _trace(duration=8.0, load=0.5, nodes=2, cores=2):
    rps = get_app(APP).rps_for_load(load, nodes * cores)
    return constant_trace(rps, duration)


def _hier(**overrides):
    base = dict(warmup=2, batch_size=4, buffer_capacity=64, noise_sigma=0.1)
    base.update(overrides)
    return HierConfig(**base)


def _config(**overrides):
    base = dict(
        app=APP, num_nodes=2, cores_per_node=2, policy="baseline",
        routing="power-aware", seed=11,
        power_cap_watts=fleet_power_budget(2, 2, fraction=0.7),
        hier=_hier(),
    )
    base.update(overrides)
    return ClusterConfig(**base)


def _run_json(config, trace):
    metrics = ClusterSim(config, trace).run()
    return json.dumps(metrics.as_dict(), sort_keys=True)


def _normalize(tree):
    """Nested state dicts with numpy leaves -> comparable plain data."""
    if isinstance(tree, dict):
        return {k: _normalize(v) for k, v in tree.items()}
    if isinstance(tree, (list, tuple)):
        return [_normalize(v) for v in tree]
    if isinstance(tree, np.ndarray):
        return ["nd", tree.dtype.str, tree.shape, tree.tolist()]
    if isinstance(tree, (np.integer, np.floating)):
        return tree.item()
    return tree


class TestHierConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError, match="algo"):
            HierConfig(algo="dqn")
        with pytest.raises(ValueError, match="control"):
            HierConfig(control="everything")
        with pytest.raises(ValueError, match="hidden"):
            HierConfig(hidden=(64, 32))
        with pytest.raises(ValueError, match="warmup"):
            HierConfig(warmup=0)
        with pytest.raises(ValueError, match="buffer_capacity"):
            HierConfig(batch_size=64, buffer_capacity=8)
        with pytest.raises(ValueError, match="shared_replay"):
            HierConfig(fed_avg_every=4)
        with pytest.raises(ValueError, match="min_weight"):
            HierConfig(min_weight=0.0)
        with pytest.raises(ValueError, match="init_share"):
            HierConfig(init_share=1.0)

    def test_cache_payload_distinguishes_configs(self):
        a = HierConfig()
        b = HierConfig(noise_sigma=0.123)
        assert a.cache_payload() != b.cache_payload()
        assert a.cache_payload() == HierConfig().cache_payload()

    def test_control_properties(self):
        assert HierConfig(control="budget").controls_budget
        assert not HierConfig(control="budget").controls_weights
        assert HierConfig(control="weights").controls_weights
        both = HierConfig(control="both")
        assert both.controls_budget and both.controls_weights


class TestFleetAgent:
    @pytest.mark.parametrize("algo", ["ddpg", "td3", "sac"])
    def test_builds_acts_and_round_trips(self, algo, tmp_path):
        cfg = _hier(algo=algo)
        agent = build_fleet_agent(3, cfg, seed=5)
        assert agent.state_dim == fleet_state_dim(3) == 3 * FEATURES_PER_NODE
        state = np.linspace(0.0, 1.0, agent.state_dim)
        action = agent.act(state, explore=False)
        assert action.shape == (3,)
        assert np.all(action >= 0.0) and np.all(action <= 1.0)
        # Parameter .npz round trip: a fresh agent loads to the same policy.
        path = str(tmp_path / f"{algo}.npz")
        agent.save(path)
        other = build_fleet_agent(3, cfg, seed=99)
        other.load(path)
        np.testing.assert_allclose(
            other.act(state, explore=False), action, rtol=0, atol=0
        )

    def test_untrained_actor_starts_at_init_share(self):
        agent = build_fleet_agent(2, _hier(init_share=0.65), seed=5)
        action = agent.act(np.zeros(agent.state_dim), explore=False)
        np.testing.assert_allclose(action, 0.65, atol=0.02)

    def test_warmup_exploration_is_suppressed(self):
        # Before the replay pool holds `warmup` transitions, explore=True
        # must act exactly like explore=False (no uniform-random budgets).
        agent = build_fleet_agent(2, _hier(warmup=4), seed=5)
        state = np.full(agent.state_dim, 0.5)
        np.testing.assert_array_equal(
            agent.act(state, explore=True), agent.act(state, explore=False)
        )

    def test_control_both_doubles_action_dim(self):
        agent = build_fleet_agent(3, _hier(control="both"), seed=5)
        assert agent.action_dim == 6

    def test_act_validates_state_shape(self):
        agent = build_fleet_agent(2, _hier(), seed=5)
        with pytest.raises(ValueError, match="shape"):
            agent.act(np.zeros(3))

    def test_state_dict_round_trip_preserves_learner(self):
        cfg = _hier()
        agent = build_fleet_agent(2, cfg, seed=5)
        rng = np.random.default_rng(0)
        for _ in range(12):
            s = rng.random(agent.state_dim)
            a = agent.act(s)
            agent.observe(s, a, -1.0, rng.random(agent.state_dim))
            if agent.ready:
                agent.update()
        assert agent.updates > 0
        snap = agent.state_dict()
        other = build_fleet_agent(2, cfg, seed=77)
        other.load_state_dict(snap)
        assert _normalize(other.state_dict()) == _normalize(agent.state_dict())

    def test_state_dict_rejects_mismatched_shape(self):
        snap = build_fleet_agent(2, _hier(), seed=5).state_dict()
        with pytest.raises(ValueError, match="node fleet"):
            build_fleet_agent(3, _hier(), seed=5).load_state_dict(snap)
        with pytest.raises(ValueError, match="controls"):
            build_fleet_agent(2, _hier(control="weights"), seed=5).load_state_dict(snap)


class TestFleetObserver:
    def test_shape_and_bounds(self):
        from repro.cluster.node import ClusterNode
        from repro.sim.engine import Engine

        engine = Engine()
        app = get_app(APP)
        nodes = [ClusterNode(engine, i, app, 2, seed=3) for i in range(3)]
        obs = FleetObserver(nodes, sla=app.sla, cap_watts=np.full(3, 20.0))
        state = obs.observe(powers=np.array([5.0, 10.0, 40.0]))
        assert state.shape == (obs.state_dim,) == (3 * FEATURES_PER_NODE,)
        assert np.all(state >= 0.0) and np.all(state <= 1.0)
        # No traffic yet: routed share is uniform, masks are clear.
        per_node = state.reshape(3, FEATURES_PER_NODE)
        np.testing.assert_allclose(per_node[:, 4], 0.0)  # down mask
        np.testing.assert_allclose(per_node[:, 5], 0.0)  # degraded mask


class TestSharedReplay:
    def _agents(self, n=2):
        from repro.cluster.node import ClusterNode, build_node_driver
        from repro.sim.engine import Engine

        engine = Engine()
        app = get_app(APP)
        nodes = [ClusterNode(engine, i, app, 2, seed=3) for i in range(n)]
        drivers = [
            build_node_driver(node, "deeppower", agent_seed=node.seed)
            for node in nodes
        ]
        return [d.agent for d in drivers]

    def test_bind_pools_transitions(self):
        agents = self._agents(2)
        proto = agents[0].replay
        shared = SharedReplay(
            proto.capacity, proto.state_dim, proto.action_dim, seed=9
        )
        for i, agent in enumerate(agents):
            shared.bind(agent, node_id=i)
        s = np.zeros(proto.state_dim)
        a = np.zeros(proto.action_dim)
        agents[0].replay.push(s, a, 0.0, s, False)
        agents[1].replay.push(s, a, 1.0, s, False)
        assert len(shared.buffer) == 2
        assert shared.pushed_by == {0: 1, 1: 1}
        # Both node views sample from the pooled buffer.
        assert len(agents[0].replay) == len(agents[1].replay) == 2

    def test_federated_average_converges_params(self):
        agents = self._agents(2)
        averaged = federated_average(agents)
        assert averaged > 0
        flat0 = agents[0].actor.get_flat()
        flat1 = agents[1].actor.get_flat()
        np.testing.assert_allclose(flat0, flat1)

    def test_federated_average_noop_for_single(self):
        agents = self._agents(1)
        assert federated_average(agents) == 0


class TestLearnedCoordinatorSim:
    def test_deterministic_and_capped(self):
        trace = _trace()
        cfg = _config()
        a = _run_json(cfg, trace)
        b = _run_json(cfg, trace)
        assert a == b
        metrics = json.loads(a)
        assert metrics["cap_ok"]
        assert metrics["hier_decisions"] > 0
        assert metrics["hier_updates"] > 0

    def test_seed_changes_hier_run(self):
        trace = _trace()
        assert _run_json(_config(seed=11), trace) != _run_json(
            _config(seed=12), trace
        )

    def test_eval_mode_runs_frozen(self):
        trace = _trace()
        metrics = json.loads(
            _run_json(_config(hier=_hier(train=False)), trace)
        )
        assert metrics["hier_decisions"] > 0
        assert metrics["hier_updates"] == 0

    def test_weights_control_steers_dispatcher(self):
        trace = _trace()
        cfg = _config(hier=_hier(control="both"))
        sim = ClusterSim(cfg, trace)
        metrics = sim.run()
        assert sim.dispatcher.weights is not None
        assert metrics.hier_decisions > 0
        # Deterministic replay holds for the weighted dispatcher too.
        assert _run_json(cfg, trace) == _run_json(cfg, trace)

    def test_shared_replay_pools_deeppower_nodes(self):
        trace = _trace()
        cfg = _config(
            policy="deeppower",
            hier=_hier(shared_replay=True, fed_avg_every=2),
        )
        sim = ClusterSim(cfg, trace)
        assert sim.shared_replay is not None
        assert len(sim.shared_replay.bound_agents) == 2
        metrics = sim.run()
        assert len(sim.shared_replay.buffer) > 0
        assert metrics.hier_fed_rounds > 0

    def test_chaos_membership_change_reapportions(self):
        from repro.faults import standard_chaos_plan

        trace = _trace(duration=10.0)
        plan = standard_chaos_plan(1.5, 2, trace.duration, seed=11)
        metrics = ClusterSim(_config(fault_plan=plan), trace).run()
        assert metrics.hier_decisions > 0
        assert metrics.crashes > 0  # the plan actually exercised membership
        # Fault-injected DVFS writes can pierce any coordinator's ceilings;
        # the guarantee is the learned layer is no worse than the heuristic.
        heuristic = ClusterSim(
            _config(fault_plan=plan, hier=None), trace
        ).run()
        assert metrics.cap_ok == heuristic.cap_ok
        assert metrics.max_window_power <= heuristic.max_window_power + 1e-6

    def test_fleet_agent_arg_requires_hier(self):
        agent = build_fleet_agent(2, _hier(), seed=5)
        with pytest.raises(ValueError, match="hier"):
            ClusterSim(_config(hier=None), _trace(), fleet_agent=agent)

    def test_hier_requires_power_cap(self):
        with pytest.raises(ValueError, match="power_cap_watts"):
            _config(power_cap_watts=None)

    def test_preseeded_agent_resumes_learning(self):
        trace = _trace()
        cfg = _config()
        first = ClusterSim(cfg, trace)
        first.run()
        updates_after_first = first.fleet_agent.updates
        assert updates_after_first > 0
        # Continue with the trained agent: updates accumulate.
        resumed = build_fleet_agent(
            2, cfg.hier, derive_seed(cfg.seed, "hier", "fleet-agent")
        )
        resumed.load_state_dict(first.fleet_agent.state_dict())
        second = ClusterSim(cfg, trace, fleet_agent=resumed)
        second.run()
        assert second.fleet_agent.updates > updates_after_first

    def test_coordinator_state_dict_round_trip(self):
        trace = _trace()
        cfg = _config()
        sim = ClusterSim(cfg, trace)
        sim.run()
        snap = sim.coordinator.state_dict()
        assert snap["kind"] == "learned-coordinator"
        other = ClusterSim(cfg, trace)
        other.coordinator.load_state_dict(snap)
        assert _normalize(other.coordinator.state_dict()) == _normalize(snap)


class TestHierOffSwitch:
    """``hier=None`` must leave the pre-hier execution path untouched."""

    def test_plain_fleet_draws_no_dispatch_rng(self):
        sim = ClusterSim(_config(hier=None), _trace())
        assert sim.dispatcher.rng is None
        assert sim.fleet_agent is None and sim.shared_replay is None
        assert isinstance(sim.coordinator, PowerCapCoordinator)
        assert type(sim.coordinator) is PowerCapCoordinator

    def test_disabled_trace_has_no_hier_events(self, tmp_path):
        path = tmp_path / "plain.trace.jsonl"
        obs = Observability.from_paths(trace_out=str(path), meta={"kind": "t"})
        try:
            ClusterSim(_config(hier=None), _trace(), obs=obs).run()
        finally:
            obs.close()
        kinds = {
            json.loads(line).get("kind")
            for line in path.read_text().splitlines()
        }
        assert "coordinator-decision" not in kinds
        summary = summarize_fleet_trace(str(path))
        assert summary.hier == {}
        assert "hier:" not in render_fleet_summary(summary)

    def test_metrics_dict_reports_zero_hier_counters(self):
        metrics = json.loads(_run_json(_config(hier=None), _trace()))
        assert metrics["hier_decisions"] == 0
        assert metrics["hier_updates"] == 0
        assert metrics["hier_fed_rounds"] == 0


class TestHierTraceSummary:
    def test_decisions_streamed_into_summary(self, tmp_path):
        path = tmp_path / "hier.trace.jsonl"
        obs = Observability.from_paths(trace_out=str(path), meta={"kind": "t"})
        try:
            ClusterSim(_config(), _trace(), obs=obs).run()
        finally:
            obs.close()
        summary = summarize_fleet_trace(str(path))
        assert summary.hier["decisions"] > 0
        assert summary.hier["learned"] > 0
        assert "mean_reward" in summary.hier
        assert "hier:" in render_fleet_summary(summary)


class TestFleetSpecHier:
    def test_cache_payload_covers_hier(self):
        trace = _trace()
        base = dict(
            app=APP, policy="baseline", trace=trace, num_nodes=2,
            cores_per_node=2, seed=11, routing="power-aware",
            power_cap_watts=fleet_power_budget(2, 2, fraction=0.7),
        )
        plain = FleetSpec(**base)
        learned = FleetSpec(hier=_hier(), **base)
        other = FleetSpec(hier=_hier(noise_sigma=0.2), **base)
        keys = {
            json.dumps(s.cache_payload(), sort_keys=True, default=str)
            for s in (plain, learned, other)
        }
        assert len(keys) == 3

    def test_execute_tags_trace_meta(self, tmp_path):
        trace = _trace(duration=4.0)
        base = dict(
            app=APP, policy="baseline", trace=trace, num_nodes=2,
            cores_per_node=2, seed=11, routing="power-aware",
            power_cap_watts=fleet_power_budget(2, 2, fraction=0.7),
        )
        path = tmp_path / "spec.trace.jsonl"
        spec = FleetSpec(hier=_hier(), trace_out=str(path), **base)
        metrics, _ = spec.execute()
        assert metrics.hier_decisions > 0
        header = json.loads(path.read_text().splitlines()[0])
        assert header["meta"]["hier"] == "ddpg:budget"
        # Hier-disabled specs carry no hier meta key at all.
        plain_path = tmp_path / "plain.trace.jsonl"
        FleetSpec(trace_out=str(plain_path), **base).execute()
        plain_header = json.loads(plain_path.read_text().splitlines()[0])
        assert "hier" not in plain_header["meta"]
