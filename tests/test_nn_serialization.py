"""Tests for the .npz module (de)serialization helpers.

Regression coverage for the extension bug: ``np.savez("foo")`` writes
``foo.npz``, so ``save_module(m, "foo")`` followed by ``load_module(m,
"foo")`` used to raise ``FileNotFoundError``.  Both directions now
normalise the extension, and writes are atomic (temp file + rename).
"""

import os

import numpy as np
import pytest

from repro.core.agent import DeepPowerAgent, build_actor, default_ddpg_config
from repro.nn.serialization import (
    load_module,
    load_modules,
    save_module,
    save_modules,
)
from repro.sim import RngRegistry


def _actor(seed=0):
    return build_actor(np.random.default_rng(seed))


class TestExtensionNormalisation:
    def test_save_load_without_extension(self, tmp_path):
        """The original bug: a path without .npz must round-trip."""
        path = str(tmp_path / "weights")  # no extension
        m1 = _actor(0)
        save_module(m1, path)
        assert os.path.exists(path + ".npz")  # np.savez's real output name
        m2 = _actor(1)
        load_module(m2, path)
        x = np.random.default_rng(2).random((4, 8))
        np.testing.assert_array_equal(m1.forward(x), m2.forward(x))

    def test_save_load_with_extension(self, tmp_path):
        path = str(tmp_path / "weights.npz")
        m1 = _actor(0)
        save_module(m1, path)
        assert os.path.exists(path)
        m2 = _actor(1)
        load_module(m2, path)
        x = np.random.default_rng(2).random((4, 8))
        np.testing.assert_array_equal(m1.forward(x), m2.forward(x))

    def test_save_modules_without_extension(self, tmp_path):
        path = str(tmp_path / "pair")
        mods1 = {"actor": _actor(0), "other": _actor(3)}
        save_modules(mods1, path)
        mods2 = {"actor": _actor(1), "other": _actor(4)}
        load_modules(mods2, path)
        x = np.random.default_rng(2).random((4, 8))
        for k in mods1:
            np.testing.assert_array_equal(mods1[k].forward(x), mods2[k].forward(x))

    def test_agent_cache_roundtrip_without_extension(self, tmp_path):
        """DeepPowerAgent.save/.load (the fig7 cache path) inherits the fix."""
        agent = DeepPowerAgent(RngRegistry(1).get("a"), default_ddpg_config())
        path = str(tmp_path / "agent-cache")
        agent.save(path)
        other = DeepPowerAgent(RngRegistry(2).get("a"), default_ddpg_config())
        other.load(path)
        s = np.random.default_rng(0).random(8)
        np.testing.assert_array_equal(
            agent.act(s, explore=False), other.act(s, explore=False)
        )

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_module(_actor(), str(tmp_path / "absent"))
        with pytest.raises(FileNotFoundError):
            load_modules({"a": _actor()}, str(tmp_path / "absent"))

    def test_load_modules_missing_prefix_raises(self, tmp_path):
        path = str(tmp_path / "x")
        save_modules({"actor": _actor(0)}, path)
        with pytest.raises(KeyError, match="critic"):
            load_modules({"critic": _actor(1)}, path)


class TestAtomicWrites:
    def test_no_temp_files_left_behind(self, tmp_path):
        save_module(_actor(), str(tmp_path / "m"))
        assert sorted(os.listdir(tmp_path)) == ["m.npz"]

    def test_overwrite_is_replace_not_append(self, tmp_path):
        path = str(tmp_path / "m.npz")
        save_module(_actor(0), path)
        first = os.path.getsize(path)
        save_module(_actor(1), path)
        assert os.path.getsize(path) == first  # same architecture, same size
        m = _actor(2)
        load_module(m, path)  # still a valid archive
