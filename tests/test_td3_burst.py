"""Tests for the TD3 extension agent and the extra arrival processes."""

import numpy as np
import pytest

from repro.cpu import Cpu
from repro.nn import TwoHeadMLP
from repro.rl import Td3Agent, Td3Config
from repro.server import Server
from repro.sim import Engine, RngRegistry
from repro.workload import ClosedLoopSource, mmpp_trace
from repro.workload.service_time import LognormalCorrelatedService
from repro.workload.apps import AppSpec


def _actor_factory(rng):
    return lambda: TwoHeadMLP(3, [16], [8], rng, output_activation="sigmoid")


class TestTd3:
    def test_actions_bounded(self, rng):
        agent = Td3Agent(_actor_factory(rng), Td3Config(state_dim=3, action_dim=2, warmup=0), rng)
        for _ in range(20):
            a = agent.act(rng.random(3), explore=True)
            assert np.all((a >= 0) & (a <= 1))

    def test_delayed_policy_updates(self, rng):
        cfg = Td3Config(state_dim=3, action_dim=2, warmup=8, batch_size=8, policy_delay=2)
        agent = Td3Agent(_actor_factory(rng), cfg, rng)
        for _ in range(16):
            agent.observe(rng.random(3), rng.random(2), -1.0, rng.random(3))
        before = agent.actor.get_flat().copy()
        out1 = agent.update()  # critic only
        assert np.allclose(agent.actor.get_flat(), before)
        assert np.isnan(out1["actor_loss"])
        out2 = agent.update()  # actor too
        assert not np.allclose(agent.actor.get_flat(), before)
        assert not np.isnan(out2["actor_loss"])

    def test_warmup_random(self, rng):
        agent = Td3Agent(_actor_factory(rng), Td3Config(state_dim=3, warmup=100), rng)
        acts = np.stack([agent.act(rng.random(3)) for _ in range(30)])
        assert acts.std() > 0.2

    def test_learns_bandit(self, rng):
        cfg = Td3Config(
            state_dim=3, action_dim=2, warmup=32, batch_size=32,
            noise_sigma=0.4, noise_decay=0.995, noise_min_sigma=0.05,
        )
        agent = Td3Agent(_actor_factory(rng), cfg, rng)
        target = np.array([0.75, 0.25])
        s = rng.random(3)
        for _ in range(400):
            a = agent.act(s)
            r = -float(np.sum((a - target) ** 2))
            s2 = rng.random(3)
            agent.observe(s, a, r, s2)
            agent.update()
            s = s2
        final = agent.act(rng.random(3), explore=False)
        assert np.abs(final - target).max() < 0.35

    def test_update_not_ready(self, rng):
        agent = Td3Agent(_actor_factory(rng), Td3Config(state_dim=3, warmup=50), rng)
        assert agent.update() is None


class TestMmppTrace:
    def test_alternating_rates(self, rng):
        t = mmpp_trace(rng, duration=100.0, calm_rate=10.0, burst_rate=100.0,
                       mean_calm=5.0, mean_burst=1.0)
        rates = set(np.unique(t.rates))
        assert rates <= {10.0, 100.0}
        assert len(rates) == 2
        assert t.duration == pytest.approx(100.0)

    def test_dwell_time_proportions(self, rng):
        t = mmpp_trace(rng, duration=8000.0, calm_rate=1.0, burst_rate=2.0,
                       mean_calm=8.0, mean_burst=2.0)
        widths = np.diff(t.edges)
        calm_time = widths[t.rates == 1.0].sum()
        burst_time = widths[t.rates == 2.0].sum()
        assert calm_time / burst_time == pytest.approx(4.0, rel=0.3)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            mmpp_trace(rng, duration=0.0, calm_rate=1.0, burst_rate=2.0,
                       mean_calm=1.0, mean_burst=1.0)
        with pytest.raises(ValueError):
            mmpp_trace(rng, duration=10.0, calm_rate=1.0, burst_rate=2.0,
                       mean_calm=0.0, mean_burst=1.0)


class TestClosedLoopSource:
    def _setup(self, population=4, think=0.05, duration=20.0):
        engine = Engine()
        rngs = RngRegistry(3)
        cpu = Cpu(engine, 2)
        app = AppSpec(
            name="t", sla=1.0,
            service=LognormalCorrelatedService(mean_work=0.02, sigma=0.4),
            contention=0.0,
        )
        srv = Server(engine, cpu, app)
        src = ClosedLoopSource(
            engine, population, think, app.service, app.sla,
            srv.submit, rngs.get("cl"), duration=duration,
        )

        class Hook:
            def on_arrival(self, r): pass
            def on_start(self, r, c): pass
            def on_complete(self, r, c): src.notify_complete(r)

        srv.set_policy(Hook())
        return engine, srv, src

    def test_outstanding_never_exceeds_population(self):
        engine, srv, src = self._setup(population=3)
        src.start()
        # sample in-flight count as the run progresses
        for t in np.linspace(1.0, 19.0, 10):
            engine.run_until(t)
            assert srv.metrics.in_flight <= 3
        assert src.generated > 10

    def test_throughput_bounded_by_population_law(self):
        # N clients, think Z, service S: X <= N / (Z + S).
        engine, srv, src = self._setup(population=4, think=0.05)
        src.start()
        engine.run_until(20.0)
        x = srv.metrics.completed / 20.0
        bound = 4 / (0.05 + 0.02 / 2.1)
        assert x <= bound * 1.05

    def test_zero_think_time_saturates(self):
        engine, srv, src = self._setup(population=2, think=0.0)
        src.start()
        engine.run_until(10.0)
        # with no think time, both clients always have a request in flight
        assert srv.metrics.completed > 100

    def test_validation(self):
        engine = Engine()
        rngs = RngRegistry(0)
        svc = LognormalCorrelatedService(mean_work=0.02, sigma=0.4)
        with pytest.raises(ValueError):
            ClosedLoopSource(engine, 0, 0.1, svc, 1.0, lambda r: None, rngs.get("a"))
        with pytest.raises(ValueError):
            ClosedLoopSource(engine, 2, -0.1, svc, 1.0, lambda r: None, rngs.get("a"))
