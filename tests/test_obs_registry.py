"""Tests for the metrics registry and span recorder."""

import json
import math
import os

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, SpanRecorder


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter("x").inc(-1)


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("x")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_streaming_moments(self):
        h = Histogram("x")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.count == 3
        assert h.mean == pytest.approx(2.0)
        assert h.min == 1.0 and h.max == 3.0
        assert h.stddev == pytest.approx(math.sqrt(2.0 / 3.0))

    def test_empty_histogram_is_nan(self):
        h = Histogram("x")
        assert math.isnan(h.mean) and math.isnan(h.stddev)
        d = h.as_dict()
        assert d["count"] == 0 and math.isnan(d["min"]) and math.isnan(d["max"])


class TestMetricsRegistry:
    def test_get_or_create_returns_same_handle(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")
        assert len(reg) == 3
        assert "a" in reg and "z" not in reg

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("a")

    def test_invalid_name_raises(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            MetricsRegistry().counter("spaces are bad")

    def test_snapshot_structure(self):
        reg = MetricsRegistry()
        reg.counter("steps").inc(3)
        reg.gauge("queue").set(7.0)
        reg.histogram("lat").observe(0.5)
        snap = reg.snapshot()
        assert snap["counters"] == {"steps": 3}
        assert snap["gauges"] == {"queue": 7.0}
        assert snap["histograms"]["lat"]["count"] == 1

    def test_dump_is_valid_json_and_atomic(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("steps").inc()
        path = str(tmp_path / "m.json")
        reg.dump(path)
        assert not os.path.exists(path + ".tmp")
        assert json.load(open(path))["counters"]["steps"] == 1

    def test_reset_drops_metrics(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.reset()
        assert len(reg) == 0


class TestSpanRecorder:
    def test_record_aggregates(self):
        sp = SpanRecorder()
        sp.record("tick", 0.1)
        sp.record("tick", 0.3)
        stats = sp.stats()["tick"]
        assert stats["count"] == 2
        assert stats["total_s"] == pytest.approx(0.4)
        assert stats["mean_s"] == pytest.approx(0.2)
        assert stats["max_s"] == pytest.approx(0.3)

    def test_span_context_manager_times_block(self):
        sp = SpanRecorder()
        with sp.span("work"):
            pass
        assert sp.stats()["work"]["count"] == 1
        assert sp.stats()["work"]["total_s"] >= 0.0

    def test_len_and_reset(self):
        sp = SpanRecorder()
        sp.record("a", 1.0)
        assert len(sp) == 1
        sp.reset()
        assert len(sp) == 0
