"""Order-preserving, failure-isolating process-pool map.

Design constraints (ISSUE 3):

* **Determinism** — results come back in submission order no matter which
  worker finished first, and seeds are derived per item with a stable hash
  so adding/reordering grid cells never perturbs sibling streams.
* **Failure isolation** — one item raising must not kill the grid; the
  traceback is captured in its :class:`ItemOutcome` and every sibling's
  result is still returned.
* **Serial fallback** — ``jobs=1`` (or a platform without ``fork``) runs
  the same code path in-process, so parallel-vs-serial comparisons always
  exercise identical per-item logic.

The pool uses the ``fork`` start method: workers inherit the parent's
imported modules (numpy, the repro package) for free, which is the cheap
"warm-up" that makes small grids worth fanning out.  An optional explicit
``warmup`` callable runs once per worker for anything fork does not cover
(e.g. priming lazy caches).

Persistent pools (ISSUE 8)
--------------------------
Forking a fresh pool per ``map()`` call made every ``run_grid`` pay the
full worker start-up cost again — the dominant cost for short cells.  By
default maps now go through a module-level registry of persistent pools
keyed by ``(workers, warmup)``: workers are forked once, survive across
``map()`` calls *and* across whole ``run_grid`` invocations, and tasks are
shipped in chunks sized to the grid.  Read-only state (imported modules,
app catalogs, DVFS tables) is shared via fork-inherited memory for free.
Each map snapshots the pool's lifetime :class:`PoolStats` into
``ParallelMap.last_stats`` so callers can assert reuse (the regression
test: two consecutive ``run_grid`` calls fork at most once per worker).
``shutdown_pools()`` tears everything down and is registered ``atexit``.

The staleness trade-off is deliberate: workers resolve pickled functions
against the modules they forked with, so code *mutated in the parent
after the first map* (e.g. a test monkeypatching a module function) is
not seen by an already-forked pool.  Pass ``persistent=False`` (or call
``shutdown_pools()``) where that matters.
"""

from __future__ import annotations

import atexit
import hashlib
import multiprocessing as mp
import os
import traceback
from dataclasses import dataclass, replace
from typing import (
    Any,
    Callable,
    Dict,
    Generic,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
)

__all__ = [
    "ItemOutcome",
    "ParallelMap",
    "PoolStats",
    "derive_seed",
    "effective_jobs",
    "shutdown_pools",
]

T = TypeVar("T")
R = TypeVar("R")


def derive_seed(base_seed: int, *parts: object, bits: int = 31) -> int:
    """Stable per-item seed: hash of ``base_seed`` and the item identity.

    Uses SHA-256 over the repr of the parts, so the result is invariant
    across python hash randomisation, process boundaries, and platforms —
    two grid cells with the same ``(base_seed, parts)`` always simulate
    the same world, and distinct cells get well-separated streams.

    >>> derive_seed(7, "xapian", "retail") == derive_seed(7, "xapian", "retail")
    True
    >>> derive_seed(7, "xapian", "retail") != derive_seed(7, "xapian", "gemini")
    True
    """
    payload = repr((int(base_seed),) + parts).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") % (1 << bits)


def effective_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` request: None/0 -> all CPUs, negatives -> 1."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    return max(1, int(jobs))


def _fork_available() -> bool:
    return "fork" in mp.get_all_start_methods()


@dataclass
class ItemOutcome(Generic[R]):
    """Result of one mapped item: exactly one of ``value``/``error`` is set."""

    index: int
    value: Optional[R] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> R:
        """The value, re-raising the captured worker error if there is one."""
        if self.error is not None:
            raise RuntimeError(f"grid item {self.index} failed:\n{self.error}")
        return self.value  # type: ignore[return-value]


def _guarded(fn: Callable[[T], R], index: int, item: T) -> ItemOutcome:
    """Run ``fn(item)``, converting any exception into an error outcome."""
    try:
        return ItemOutcome(index=index, value=fn(item))
    except BaseException:  # noqa: BLE001 - isolation is the whole point
        return ItemOutcome(index=index, error=traceback.format_exc())


def _pool_entry(args) -> ItemOutcome:
    fn, index, item = args
    return _guarded(fn, index, item)


# ---------------------------------------------------------- persistent pools

@dataclass
class PoolStats:
    """Lifetime accounting for one persistent pool (or one ad-hoc map).

    ``forks`` counts worker processes ever started under this pool key;
    with persistence it stays at ``workers`` no matter how many maps run.
    """

    workers: int = 0
    forks: int = 0
    map_calls: int = 0
    reused_maps: int = 0
    tasks: int = 0
    chunksize: int = 1

    @property
    def tasks_per_worker(self) -> float:
        return self.tasks / self.workers if self.workers else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "workers": self.workers,
            "forks": self.forks,
            "map_calls": self.map_calls,
            "reused_maps": self.reused_maps,
            "tasks": self.tasks,
            "tasks_per_worker": self.tasks_per_worker,
            "chunksize": self.chunksize,
        }


class _PersistentPool:
    """One forked worker pool kept alive across maps (registry entry)."""

    def __init__(self, workers: int, warmup: Optional[Callable[[], None]]) -> None:
        ctx = mp.get_context("fork")
        self.pool = ctx.Pool(processes=workers, initializer=warmup)
        self.stats = PoolStats(workers=workers, forks=workers)

    def map(self, fn, tasks, chunksize: int):
        self.stats.map_calls += 1
        self.stats.tasks += len(tasks)
        self.stats.chunksize = chunksize
        return self.pool.map(fn, tasks, chunksize=chunksize)

    def close(self) -> None:
        self.pool.terminate()
        self.pool.join()


#: Live persistent pools, keyed by ``(workers, warmup identity)``.
_POOLS: Dict[Tuple[int, Optional[Callable]], _PersistentPool] = {}


def _acquire_pool(
    workers: int, warmup: Optional[Callable[[], None]]
) -> _PersistentPool:
    key = (workers, warmup)
    pool = _POOLS.get(key)
    if pool is None:
        pool = _PersistentPool(workers, warmup)
        _POOLS[key] = pool
    else:
        pool.stats.reused_maps += 1
    return pool


def _evict_pool(workers: int, warmup: Optional[Callable[[], None]]) -> None:
    pool = _POOLS.pop((workers, warmup), None)
    if pool is not None:
        pool.close()


def shutdown_pools() -> int:
    """Terminate every persistent pool; returns how many were closed.

    Safe to call any time (new maps just re-fork); registered ``atexit``
    so interpreter shutdown never hangs on live workers.
    """
    n = 0
    for pool in list(_POOLS.values()):
        pool.close()
        n += 1
    _POOLS.clear()
    return n


atexit.register(shutdown_pools)


class ParallelMap:
    """Map a picklable function over items on a deterministic process pool.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs serially in-process;
        ``None``/``0`` means one per CPU.  On platforms without ``fork``
        the map silently degrades to the serial path — correctness first.
    warmup:
        Optional zero-argument callable run once in each worker after it
        starts (module imports are already inherited via ``fork``).  Also
        part of the persistent-pool registry key, so it must be a stable
        module-level callable for pools to be reused across maps.
    chunksize:
        Items per pool task; ``None`` (default) auto-sizes to roughly four
        chunks per worker — batched shipping for big grids, per-item
        scheduling (fair for heterogeneous cell costs) for small ones.
    persistent:
        Keep workers alive across ``map()`` calls via the module registry
        (default).  ``False`` restores the historic fork-per-map pool for
        callers that mutate module state between maps.

    Notes
    -----
    ``fn`` and every item must be picklable (module-level functions and
    plain dataclasses; no closures).  Results arrive in submission order.
    After a parallel map, :attr:`last_stats` holds a snapshot of the
    serving pool's lifetime :class:`PoolStats` (``None`` after serial
    maps).
    """

    def __init__(
        self,
        jobs: int = 1,
        warmup: Optional[Callable[[], None]] = None,
        chunksize: Optional[int] = None,
        persistent: bool = True,
    ) -> None:
        self.jobs = effective_jobs(jobs)
        self.warmup = warmup
        self.chunksize = None if chunksize is None else max(1, int(chunksize))
        self.persistent = bool(persistent)
        #: Stats snapshot of the pool that served the last parallel map.
        self.last_stats: Optional[PoolStats] = None

    @property
    def is_serial(self) -> bool:
        return self.jobs <= 1 or not _fork_available()

    def _chunksize_for(self, num_tasks: int, workers: int) -> int:
        if self.chunksize is not None:
            return self.chunksize
        return max(1, num_tasks // (workers * 4))

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[ItemOutcome]:
        """Apply ``fn`` to every item; outcomes are in submission order."""
        items = list(items)
        if not items:
            return []
        if self.is_serial or len(items) == 1:
            self.last_stats = None
            return [_guarded(fn, i, item) for i, item in enumerate(items)]
        tasks = [(fn, i, item) for i, item in enumerate(items)]
        # __main__-defined functions resolve by name in the *forked* worker
        # namespace: a function defined after the pool forked is missing
        # there, and the unpickling error kills the worker mid-queue (the
        # map never returns).  Importable-module functions are immune — the
        # worker (re)imports the module on demand — so only scripts'
        # __main__ functions fall back to a fresh fork-per-map pool.
        persistent = (
            self.persistent and getattr(fn, "__module__", "__main__") != "__main__"
        )
        if persistent:
            chunk = self._chunksize_for(len(tasks), self.jobs)
            pool = _acquire_pool(self.jobs, self.warmup)
            try:
                outcomes = pool.map(_pool_entry, tasks, chunk)
            except BaseException:
                # A broken pool (killed worker, unpicklable payload mid-map)
                # must not serve the next caller: evict and re-fork lazily.
                _evict_pool(self.jobs, self.warmup)
                raise
            self.last_stats = replace(pool.stats)
        else:
            ctx = mp.get_context("fork")
            workers = min(self.jobs, len(items))
            chunk = self._chunksize_for(len(tasks), workers)
            with ctx.Pool(processes=workers, initializer=self.warmup) as pool:
                outcomes = pool.map(_pool_entry, tasks, chunksize=chunk)
            self.last_stats = PoolStats(
                workers=workers, forks=workers, map_calls=1,
                tasks=len(tasks), chunksize=chunk,
            )
        # Pool.map preserves order already; assert the invariant cheaply.
        for i, out in enumerate(outcomes):
            if out.index != i:  # pragma: no cover - would be a stdlib bug
                raise RuntimeError("process pool returned results out of order")
        return outcomes

    def map_values(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Like :meth:`map` but unwraps, re-raising the first item error."""
        return [out.unwrap() for out in self.map(fn, items)]


def default_warmup() -> None:  # pragma: no cover - exercised in subprocesses
    """Touch the heavy imports so the first real item does not pay them.

    With ``fork`` this is usually a no-op (the parent already imported
    everything); under unusual embedding it still guarantees a warm worker.
    """
    import numpy  # noqa: F401

    from .. import experiments  # noqa: F401
