"""End-to-end tests for ClusterSim: determinism, cap compliance, baselines
under dispatcher-fed arrivals, fleet metrics merging, and grid fan-out."""

import json

import numpy as np
import pytest

from repro.cluster.sim import (
    ClusterConfig,
    ClusterSim,
    FleetSpec,
    fleet_power_budget,
    fleet_trace,
    merge_run_metrics,
)
from repro.parallel import RunResultCache, run_grid
from repro.server.metrics import LatencyRecorder
from repro.workload.apps import get_app
from repro.workload.trace import WorkloadTrace, constant_trace, diurnal_trace
from repro.sim.rng import RngRegistry


APP = "xapian"


def _trace(duration=6.0, load=0.5, nodes=2, cores=2):
    rps = get_app(APP).rps_for_load(load, nodes * cores)
    return constant_trace(rps, duration)


def _config(**overrides):
    base = dict(
        app=APP, num_nodes=2, cores_per_node=2, policy="retail",
        routing="jsq", seed=11,
    )
    base.update(overrides)
    return ClusterConfig(**base)


def _run_json(config, trace):
    metrics = ClusterSim(config, trace).run()
    # NaN != NaN breaks dict equality; the serialised form compares exactly.
    return json.dumps(metrics.as_dict(), sort_keys=True)


class TestClusterConfig:
    def test_validates_shape(self):
        with pytest.raises(ValueError, match="num_nodes"):
            _config(num_nodes=0)
        with pytest.raises(ValueError, match="cores_per_node"):
            _config(cores_per_node=0)
        with pytest.raises(ValueError, match="node policy"):
            _config(policy="nonsense")
        with pytest.raises(ValueError, match="routing"):
            _config(routing="nonsense")
        with pytest.raises(ValueError, match="power_cap_watts"):
            _config(power_cap_watts=-1.0)


class TestDeterminism:
    def test_same_seed_same_fleet(self):
        trace = _trace()
        assert _run_json(_config(), trace) == _run_json(_config(), trace)

    def test_capped_run_deterministic(self):
        trace = _trace()
        budget = fleet_power_budget(2, 2, fraction=0.5)
        cfg = _config(policy="baseline", routing="power-aware",
                      power_cap_watts=budget)
        assert _run_json(cfg, trace) == _run_json(cfg, trace)

    def test_seed_changes_fleet(self):
        trace = _trace()
        assert _run_json(_config(seed=11), trace) != _run_json(
            _config(seed=12), trace
        )


class TestPowerCapCompliance:
    def test_fleet_power_stays_under_budget(self):
        # Run-at-max baseline against a budget that forces throttling.
        budget = fleet_power_budget(2, 2, fraction=0.5)
        cfg = _config(policy="baseline", routing="power-aware",
                      power_cap_watts=budget)
        metrics = ClusterSim(cfg, _trace(duration=10.0)).run()
        assert metrics.cap_ok
        assert metrics.max_window_power <= budget * 1.05
        assert metrics.throttled_windows > 0
        assert metrics.fleet.completed > 0

    def test_uncapped_run_reports_vacuous_cap(self):
        metrics = ClusterSim(_config(), _trace()).run()
        assert metrics.cap_ok
        assert np.isnan(metrics.max_window_power)
        assert metrics.throttled_windows == 0


class TestBaselinesUnderDispatch:
    """ReTail and Gemini fed by the dispatcher instead of their own source."""

    @pytest.mark.parametrize("policy", ["retail", "gemini"])
    @pytest.mark.parametrize("routing", ["round-robin", "jsq", "power-aware"])
    def test_policy_serves_fleet(self, policy, routing):
        cfg = _config(policy=policy, routing=routing)
        metrics = ClusterSim(cfg, _trace()).run()
        assert metrics.fleet.completed > 0
        assert all(m.completed > 0 for m in metrics.node_metrics)
        assert sum(metrics.routed) >= metrics.fleet.completed
        assert np.isfinite(metrics.fleet.tail_latency)
        assert np.isfinite(metrics.fleet.avg_power_watts)

    def test_gemini_boosts_then_queue_drains_to_zero_mid_window(self):
        """Two-stage boost under overload, then a zero-rate tail: the boost
        check keeps ticking over drained (empty-queue) nodes without
        firing or failing."""
        app = get_app(APP)
        burst = app.rps_for_load(1.4, 2 * 2)  # fleet-wide overload
        trace = WorkloadTrace([0.0, 2.0, 4.0], [burst, 0.0])
        cfg = _config(policy="gemini", routing="jsq")
        sim = ClusterSim(cfg, trace)
        metrics = sim.run()
        # Stage 2 fired during the burst (queue risk / deadline projection).
        boosts = [d.boosts for d in sim.drivers]
        assert sum(boosts) > 0
        # The zero-rate tail drained every node's queue to empty while the
        # per-node boost-check tasks were still running.
        assert all(n.queue_len() == 0 for n in sim.nodes)
        assert all(n.busy_workers() == 0 for n in sim.nodes)
        assert metrics.fleet.completed == sum(n.routed for n in sim.nodes)

    def test_retail_under_burst_drain(self):
        app = get_app(APP)
        burst = app.rps_for_load(1.2, 2 * 2)
        trace = WorkloadTrace([0.0, 2.0, 4.0], [burst, 0.0])
        metrics = ClusterSim(_config(policy="retail"), trace).run()
        assert metrics.fleet.completed > 0
        assert metrics.fleet.completed == sum(metrics.routed)


class TestMergeRunMetrics:
    def test_pooled_equals_concatenated(self):
        rng = np.random.default_rng(4)
        sla = 0.08
        recs = []
        pooled = LatencyRecorder(sla)
        for k in range(3):
            rec = LatencyRecorder(sla)
            for lat in rng.uniform(0.01, 0.2, size=50):
                lat = float(lat)
                rec.latencies.append(lat)
                rec.service_times.append(lat * 0.6)
                rec.queue_times.append(lat * 0.4)
                pooled.latencies.append(lat)
                pooled.service_times.append(lat * 0.6)
                pooled.queue_times.append(lat * 0.4)
            rec.arrived = rec.completed = 50
            rec.timeouts = sum(1 for x in rec.latencies if x > sla)
            pooled.arrived += 50
            pooled.completed += 50
            pooled.timeouts += rec.timeouts
            recs.append(rec)
        merged = merge_run_metrics(recs, sla, duration=10.0)
        direct = pooled.summarize(10.0)
        assert json.dumps(merged.as_dict(), sort_keys=True) == json.dumps(
            direct.as_dict(), sort_keys=True
        )


class TestFleetHelpers:
    def test_fleet_trace_scales_to_fleet_capacity(self):
        rngs = RngRegistry(3)
        base = diurnal_trace(rngs.get("t"), duration=30.0)
        scaled = fleet_trace(base, APP, num_nodes=4, workers_per_node=2,
                             load=0.5)
        app = get_app(APP)
        assert scaled.mean_rate() == pytest.approx(
            app.rps_for_load(0.5, 8), rel=1e-9
        )


class TestFleetSpecGrid:
    def _specs(self):
        trace = _trace(duration=4.0, load=0.4)
        return [
            FleetSpec(app=APP, policy="retail", trace=trace, num_nodes=2,
                      cores_per_node=2, seed=7, routing=routing,
                      label="test-fleet")
            for routing in ("round-robin", "jsq")
        ]

    def test_parallel_matches_serial(self):
        serial = run_grid(self._specs(), jobs=1)
        parallel = run_grid(self._specs(), jobs=2)
        for a, b in zip(serial, parallel):
            assert json.dumps(a.unwrap().as_dict(), sort_keys=True) == \
                json.dumps(b.unwrap().as_dict(), sort_keys=True)

    def test_cache_round_trip(self, tmp_path):
        cache = RunResultCache(root=str(tmp_path))
        first = run_grid(self._specs(), jobs=1, cache=cache)
        second = run_grid(self._specs(), jobs=1, cache=cache)
        assert not any(o.from_cache for o in first)
        assert all(o.from_cache for o in second)
        for a, b in zip(first, second):
            assert json.dumps(a.unwrap().as_dict(), sort_keys=True) == \
                json.dumps(b.unwrap().as_dict(), sort_keys=True)

    def test_failed_cell_isolated(self):
        specs = self._specs()
        bad = FleetSpec(app=APP, policy="deeppower", trace=specs[0].trace,
                        num_nodes=2, cores_per_node=2, seed=7,
                        agent_path="/nonexistent/agent.npz")
        outcomes = run_grid([specs[0], bad], jobs=1)
        assert outcomes[0].ok
        assert not outcomes[1].ok and outcomes[1].error
