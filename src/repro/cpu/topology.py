"""CPU package: a socket of cores sharing a DVFS table and power model.

The paper deploys worker threads on socket 0 and measures that socket's RAPL
domain; here a :class:`Cpu` is one such socket.  Multi-socket layouts are a
list of Cpus (see :func:`dual_socket`).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..sim.engine import Engine
from .core import Core
from .dvfs import DEFAULT_TABLE, FrequencyTable
from .power import DEFAULT_POWER_MODEL, PowerModel

__all__ = ["Cpu", "dual_socket"]


class Cpu:
    """A socket of ``num_cores`` DVFS-capable cores.

    Parameters
    ----------
    engine:
        Simulation engine (shared clock).
    num_cores:
        Cores in this package.
    table:
        DVFS table shared by all cores (per-core frequency is independent —
        the 5218R exposes per-core P-states).
    power_model:
        Analytic power model; the package constant is metered here.
    """

    def __init__(
        self,
        engine: Engine,
        num_cores: int,
        table: FrequencyTable = DEFAULT_TABLE,
        power_model: PowerModel = DEFAULT_POWER_MODEL,
    ) -> None:
        if num_cores <= 0:
            raise ValueError(f"num_cores must be positive, got {num_cores}")
        self.engine = engine
        self.table = table
        self.power_model = power_model
        self.cores: List[Core] = [
            Core(engine, i, table, power_model) for i in range(num_cores)
        ]
        self._created_at = engine.now

    # ------------------------------------------------------------------ sizes

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    def __len__(self) -> int:
        return len(self.cores)

    def __getitem__(self, idx: int) -> Core:
        return self.cores[idx]

    def __iter__(self):
        return iter(self.cores)

    # ----------------------------------------------------------------- control

    def set_all_frequencies(self, freq: float) -> None:
        """Set every core to ``freq`` (quantised)."""
        for core in self.cores:
            core.set_frequency(freq)

    def set_frequencies(self, freqs: Sequence[float]) -> None:
        """Per-core frequency assignment; ``len(freqs)`` must match."""
        if len(freqs) != len(self.cores):
            raise ValueError(
                f"expected {len(self.cores)} frequencies, got {len(freqs)}"
            )
        for core, f in zip(self.cores, freqs):
            core.set_frequency(f)

    # ------------------------------------------------------------------ meters

    def frequencies(self) -> np.ndarray:
        """Current per-core frequencies (GHz)."""
        return np.array([c.frequency for c in self.cores])

    def busy_mask(self) -> np.ndarray:
        """Boolean per-core busy flags."""
        return np.array([c.busy for c in self.cores])

    def busy_count(self) -> int:
        """Number of cores currently executing a request."""
        return sum(1 for c in self.cores if c.busy)

    def utilization(self) -> float:
        """Instantaneous fraction of busy cores."""
        return self.busy_count() / len(self.cores)

    def energy_joules(self) -> float:
        """Socket energy: all cores + package constant since construction."""
        core_e = sum(c.energy_joules() for c in self.cores)
        pkg_e = self.power_model.package_watts * (self.engine.now - self._created_at)
        return core_e + pkg_e

    def power_watts(self) -> float:
        """Instantaneous socket power draw (W)."""
        return self.power_model.package_watts + sum(c.power_watts() for c in self.cores)

    def total_switches(self) -> int:
        """Total DVFS transitions across all cores."""
        return sum(c.switch_count for c in self.cores)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cpu(cores={len(self.cores)}, table={self.table.fmin}-{self.table.turbo} GHz)"


def dual_socket(
    engine: Engine,
    cores_per_socket: int,
    table: FrequencyTable = DEFAULT_TABLE,
    power_model: PowerModel = DEFAULT_POWER_MODEL,
) -> List[Cpu]:
    """The paper's 2-socket layout: workers on socket 0, support on socket 1."""
    return [
        Cpu(engine, cores_per_socket, table, power_model),
        Cpu(engine, cores_per_socket, table, power_model),
    ]
