"""Fig 2: relative-RMSE heatmap — prediction degrades across load levels."""

import numpy as np
from conftest import run_once

from repro.experiments.fig2_rmse import render_fig2, run_fig2


def test_fig2_relative_rmse_heatmap(benchmark, emit):
    results = run_once(benchmark, run_fig2)
    emit("Fig 2 — relative RMSE across load levels", render_fig2(results))

    for name, r in results.items():
        m = r.matrix
        # Diagonal ~1 by construction.
        assert np.allclose(np.diag(m), 1.0, atol=0.02)
        # Paper's motivation: substantial degradation at large load gaps.
        assert m[-1, 0] > 1.2, f"{name}: high->low transfer should degrade"
        assert r.stats["offdiag_mean"] > 1.0
