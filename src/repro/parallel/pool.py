"""Order-preserving, failure-isolating process-pool map.

Design constraints (ISSUE 3):

* **Determinism** — results come back in submission order no matter which
  worker finished first, and seeds are derived per item with a stable hash
  so adding/reordering grid cells never perturbs sibling streams.
* **Failure isolation** — one item raising must not kill the grid; the
  traceback is captured in its :class:`ItemOutcome` and every sibling's
  result is still returned.
* **Serial fallback** — ``jobs=1`` (or a platform without ``fork``) runs
  the same code path in-process, so parallel-vs-serial comparisons always
  exercise identical per-item logic.

The pool uses the ``fork`` start method: workers inherit the parent's
imported modules (numpy, the repro package) for free, which is the cheap
"warm-up" that makes small grids worth fanning out.  An optional explicit
``warmup`` callable runs once per worker for anything fork does not cover
(e.g. priming lazy caches).
"""

from __future__ import annotations

import hashlib
import multiprocessing as mp
import os
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Generic, List, Optional, Sequence, TypeVar

__all__ = ["ItemOutcome", "ParallelMap", "derive_seed", "effective_jobs"]

T = TypeVar("T")
R = TypeVar("R")


def derive_seed(base_seed: int, *parts: object, bits: int = 31) -> int:
    """Stable per-item seed: hash of ``base_seed`` and the item identity.

    Uses SHA-256 over the repr of the parts, so the result is invariant
    across python hash randomisation, process boundaries, and platforms —
    two grid cells with the same ``(base_seed, parts)`` always simulate
    the same world, and distinct cells get well-separated streams.

    >>> derive_seed(7, "xapian", "retail") == derive_seed(7, "xapian", "retail")
    True
    >>> derive_seed(7, "xapian", "retail") != derive_seed(7, "xapian", "gemini")
    True
    """
    payload = repr((int(base_seed),) + parts).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") % (1 << bits)


def effective_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` request: None/0 -> all CPUs, negatives -> 1."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    return max(1, int(jobs))


def _fork_available() -> bool:
    return "fork" in mp.get_all_start_methods()


@dataclass
class ItemOutcome(Generic[R]):
    """Result of one mapped item: exactly one of ``value``/``error`` is set."""

    index: int
    value: Optional[R] = None
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> R:
        """The value, re-raising the captured worker error if there is one."""
        if self.error is not None:
            raise RuntimeError(f"grid item {self.index} failed:\n{self.error}")
        return self.value  # type: ignore[return-value]


def _guarded(fn: Callable[[T], R], index: int, item: T) -> ItemOutcome:
    """Run ``fn(item)``, converting any exception into an error outcome."""
    try:
        return ItemOutcome(index=index, value=fn(item))
    except BaseException:  # noqa: BLE001 - isolation is the whole point
        return ItemOutcome(index=index, error=traceback.format_exc())


def _pool_entry(args) -> ItemOutcome:
    fn, index, item = args
    return _guarded(fn, index, item)


class ParallelMap:
    """Map a picklable function over items on a deterministic process pool.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs serially in-process;
        ``None``/``0`` means one per CPU.  On platforms without ``fork``
        the map silently degrades to the serial path — correctness first.
    warmup:
        Optional zero-argument callable run once in each worker after it
        starts (module imports are already inherited via ``fork``).
    chunksize:
        Items per pool task; 1 keeps scheduling fair for heterogeneous
        item costs (a DeepPower evaluation next to a cheap baseline run).

    Notes
    -----
    ``fn`` and every item must be picklable (module-level functions and
    plain dataclasses; no closures).  Results arrive in submission order.
    """

    def __init__(
        self,
        jobs: int = 1,
        warmup: Optional[Callable[[], None]] = None,
        chunksize: int = 1,
    ) -> None:
        self.jobs = effective_jobs(jobs)
        self.warmup = warmup
        self.chunksize = max(1, int(chunksize))

    @property
    def is_serial(self) -> bool:
        return self.jobs <= 1 or not _fork_available()

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> List[ItemOutcome]:
        """Apply ``fn`` to every item; outcomes are in submission order."""
        items = list(items)
        if not items:
            return []
        if self.is_serial or len(items) == 1:
            return [_guarded(fn, i, item) for i, item in enumerate(items)]
        ctx = mp.get_context("fork")
        workers = min(self.jobs, len(items))
        with ctx.Pool(processes=workers, initializer=self.warmup) as pool:
            tasks = [(fn, i, item) for i, item in enumerate(items)]
            outcomes = pool.map(_pool_entry, tasks, chunksize=self.chunksize)
        # Pool.map preserves order already; assert the invariant cheaply.
        for i, out in enumerate(outcomes):
            if out.index != i:  # pragma: no cover - would be a stdlib bug
                raise RuntimeError("process pool returned results out of order")
        return outcomes

    def map_values(self, fn: Callable[[T], R], items: Sequence[T]) -> List[R]:
        """Like :meth:`map` but unwraps, re-raising the first item error."""
        return [out.unwrap() for out in self.map(fn, items)]


def default_warmup() -> None:  # pragma: no cover - exercised in subprocesses
    """Touch the heavy imports so the first real item does not pay them.

    With ``fork`` this is usually a no-op (the parent already imported
    everything); under unusual embedding it still guarantees a warm worker.
    """
    import numpy  # noqa: F401

    from .. import experiments  # noqa: F401
