"""Tests for the cpufreq governor implementations."""

import numpy as np
import pytest

from repro.cpu import (
    ConservativeGovernor,
    Cpu,
    OndemandGovernor,
    PerformanceGovernor,
    PowersaveGovernor,
    UserspaceGovernor,
)


class TestStaticGovernors:
    def test_performance_pins_turbo(self, engine, cpu):
        PerformanceGovernor(engine, cpu).start()
        assert np.allclose(cpu.frequencies(), cpu.table.turbo)

    def test_performance_without_turbo(self, engine, cpu):
        PerformanceGovernor(engine, cpu, use_turbo=False).start()
        assert np.allclose(cpu.frequencies(), cpu.table.fmax)

    def test_powersave_pins_fmin(self, engine, cpu):
        PowersaveGovernor(engine, cpu).start()
        assert np.allclose(cpu.frequencies(), cpu.table.fmin)

    def test_userspace_set_speed(self, engine, cpu):
        gov = UserspaceGovernor(engine, cpu)
        gov.start()
        applied = gov.set_speed(1, 1.33)
        assert applied == pytest.approx(1.4)
        assert cpu[1].frequency == pytest.approx(1.4)
        assert cpu[0].frequency == pytest.approx(cpu.table.fmax)


class TestOndemand:
    def _run_busy(self, engine, cpu, busy: bool, duration: float):
        for c in cpu.cores:
            c.set_busy(busy)
        engine.run_until(engine.now + duration)

    def test_bursts_to_max_when_busy(self, engine, cpu):
        gov = OndemandGovernor(engine, cpu, sampling_rate=0.01)
        gov.start()
        self._run_busy(engine, cpu, True, 0.1)
        assert np.allclose(cpu.frequencies(), cpu.table.turbo)

    def test_drops_toward_min_when_idle(self, engine, cpu):
        gov = OndemandGovernor(engine, cpu, sampling_rate=0.01)
        gov.start()
        self._run_busy(engine, cpu, True, 0.05)
        self._run_busy(engine, cpu, False, 0.2)
        assert np.allclose(cpu.frequencies(), cpu.table.fmin)

    def test_stop_halts_sampling(self, engine, cpu):
        gov = OndemandGovernor(engine, cpu, sampling_rate=0.01)
        gov.start()
        gov.stop()
        self._run_busy(engine, cpu, True, 0.1)
        assert np.allclose(cpu.frequencies(), cpu.table.fmax)  # untouched

    def test_invalid_threshold(self, engine, cpu):
        with pytest.raises(ValueError):
            OndemandGovernor(engine, cpu, up_threshold=1.5)

    def test_invalid_sampling_rate(self, engine, cpu):
        with pytest.raises(ValueError):
            OndemandGovernor(engine, cpu, sampling_rate=0.0)


class TestConservative:
    def test_steps_up_one_level_per_sample(self, engine, cpu):
        cpu.set_all_frequencies(1.0)
        gov = ConservativeGovernor(engine, cpu, sampling_rate=0.01)
        gov.start()
        for c in cpu.cores:
            c.set_busy(True)
        engine.run_until(0.03)  # 3 samples
        assert np.allclose(cpu.frequencies(), 1.3)

    def test_steps_down_when_idle(self, engine, cpu):
        cpu.set_all_frequencies(1.0)
        gov = ConservativeGovernor(engine, cpu, sampling_rate=0.01)
        gov.start()
        engine.run_until(0.02)  # 2 idle samples
        assert np.allclose(cpu.frequencies(), 0.8)

    def test_threshold_validation(self, engine, cpu):
        with pytest.raises(ValueError):
            ConservativeGovernor(engine, cpu, up_threshold=0.2, down_threshold=0.5)
