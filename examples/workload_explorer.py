#!/usr/bin/env python
"""Explore the workload substrate: app tails (Fig 1) and traces (Fig 6).

Prints each Tailbench-like app's service-time statistics next to the paper
Table 3 SLAs, then synthesizes a month of diurnal e-commerce-style RPS and
downsamples it to an evaluation trace exactly as §5.2 describes.

Run:  python examples/workload_explorer.py
"""

import numpy as np

from repro.analysis import format_table, sparkline, tail_ratio
from repro.sim import RngRegistry
from repro.workload import SIM_APPS, diurnal_trace, synthesize_month

SAMPLES = 30_000


def main() -> None:
    rngs = RngRegistry(seed=1)

    print("Tailbench-like application catalog (sim scale):\n")
    rows = []
    for name, app in SIM_APPS.items():
        works, _ = app.service.sample_batch(rngs.get(f"svc-{name}"), SAMPLES)
        rows.append([
            name,
            app.sla * 1e3,
            app.mean_service_fmax * 1e3,
            tail_ratio(works, 0.99),
            f"{app.dilation:.0f}x",
            app.description,
        ])
    print(format_table(
        ["app", "SLA (ms)", "mean svc (ms)", "p99/mean", "dilation", "workload"],
        rows, "{:.2f}",
    ))

    print("\nnormalised service-time CDFs (x axis 0..8x mean):")
    for name, app in SIM_APPS.items():
        works, _ = app.service.sample_batch(rngs.get(f"cdf-{name}"), SAMPLES)
        grid = np.linspace(0, 8, 70)
        cdf = np.searchsorted(np.sort(works / works.mean()), grid) / len(works)
        print(f"  {name:9s} {sparkline(cdf, 70)}")

    print("\nmonth-long synthetic e-commerce RPS (hourly):")
    month = synthesize_month(rngs.get("month"))
    print("  " + sparkline(month.rates, 100))
    print(f"  peak/mean {month.peak_rate() / month.mean_rate():.2f}, "
          f"trough/mean {month.rates.min() / month.mean_rate():.2f}")

    trace = diurnal_trace(rngs.get("eval"), duration=360.0, num_segments=120)
    print("\ndownsampled 360 s evaluation trace (the paper's default period):")
    print("  " + sparkline(trace.rates, 100))
    print(f"  {len(trace.rates)} segments, mean {trace.mean_rate():.1f} rps "
          "(unscaled; experiments rescale it to each app's calibrated load)")


if __name__ == "__main__":
    main()
