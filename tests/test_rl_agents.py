"""Tests for the DRL algorithms (DDPG, DQN/DDQN, SAC, critics)."""

import numpy as np
import pytest

from repro.nn import TwoHeadMLP, numerical_gradient
from repro.rl import (
    DdpgAgent,
    DdpgConfig,
    DqnAgent,
    DqnConfig,
    SacAgent,
    SacConfig,
    StateActionCritic,
    TwinCritic,
    action_grid,
    make_ddqn,
)


def _actor_factory(rng):
    return lambda: TwoHeadMLP(3, [16], [8], rng, output_activation="sigmoid")


class TestStateActionCritic:
    def test_forward_shape(self, rng):
        c = StateActionCritic(3, 2, rng, hidden=(8, 6, 4))
        q = c.forward_sa(rng.standard_normal((5, 3)), rng.random((5, 2)))
        assert q.shape == (5, 1)

    def test_module_forward_splits_concat(self, rng):
        c = StateActionCritic(3, 2, rng, hidden=(8, 6, 4))
        s = rng.standard_normal((4, 3))
        a = rng.random((4, 2))
        x = np.concatenate([s, a], axis=1)
        assert np.allclose(c.forward(x), c.forward_sa(s, a))

    def test_parameter_gradcheck(self, rng):
        c = StateActionCritic(2, 1, rng, hidden=(4, 3, 3))
        s = rng.standard_normal((3, 2))
        a = rng.random((3, 1))
        x = np.concatenate([s, a], axis=1)
        q = c.forward(x)
        target = rng.standard_normal(q.shape)
        from repro.nn import mse_loss

        _, grad = mse_loss(q, target)
        c.zero_grad()
        c.backward(grad)
        analytic = np.concatenate([p.grad.ravel() for p in c.parameters()])
        numeric = numerical_gradient(c, x, lambda y: mse_loss(y, target)[0])
        assert np.abs(analytic - numeric).max() < 1e-6

    def test_action_gradient_matches_numeric(self, rng):
        c = StateActionCritic(2, 2, rng, hidden=(6, 5, 4))
        s = rng.standard_normal((1, 2))
        a = rng.random((1, 2))
        _, ga = c.action_gradient(s, a)
        eps = 1e-6
        for j in range(2):
            ap = a.copy()
            ap[0, j] += eps
            am = a.copy()
            am[0, j] -= eps
            num = (c.forward_sa(s, ap)[0, 0] - c.forward_sa(s, am)[0, 0]) / (2 * eps)
            assert ga[0, j] == pytest.approx(num, abs=1e-5)

    def test_action_gradient_leaves_param_grads_zero(self, rng):
        c = StateActionCritic(2, 1, rng)
        c.action_gradient(rng.standard_normal((2, 2)), rng.random((2, 1)))
        assert all(np.allclose(p.grad, 0.0) for p in c.parameters())

    def test_hidden_validation(self, rng):
        with pytest.raises(ValueError):
            StateActionCritic(2, 1, rng, hidden=(4, 3))

    def test_twin_min(self, rng):
        tw = TwinCritic(2, 1, rng, hidden=(4, 3, 3))
        s = rng.standard_normal((4, 2))
        a = rng.random((4, 1))
        q1, q2 = tw.forward_sa(s, a)
        assert np.allclose(tw.min_q(s, a), np.minimum(q1, q2))


class TestDdpg:
    def test_warmup_actions_uniform(self, rng):
        cfg = DdpgConfig(state_dim=3, action_dim=2, warmup=100)
        agent = DdpgAgent(_actor_factory(rng), cfg, rng)
        acts = np.stack([agent.act(rng.random(3)) for _ in range(50)])
        assert np.all((acts >= 0) & (acts <= 1))
        assert acts.std() > 0.2  # near-uniform spread

    def test_exploit_actions_bounded(self, rng):
        cfg = DdpgConfig(state_dim=3, action_dim=2, warmup=0)
        agent = DdpgAgent(_actor_factory(rng), cfg, rng)
        for _ in range(20):
            a = agent.act(rng.random(3), explore=True)
            assert np.all((a >= 0) & (a <= 1))

    def test_update_returns_none_before_ready(self, rng):
        cfg = DdpgConfig(state_dim=3, action_dim=2, warmup=10, batch_size=8)
        agent = DdpgAgent(_actor_factory(rng), cfg, rng)
        assert agent.update() is None

    def test_update_changes_parameters_and_targets(self, rng):
        cfg = DdpgConfig(state_dim=3, action_dim=2, warmup=8, batch_size=8, tau=0.1)
        agent = DdpgAgent(_actor_factory(rng), cfg, rng)
        for _ in range(16):
            s = rng.random(3)
            agent.observe(s, rng.random(2), -1.0, rng.random(3))
        before = agent.actor.get_flat().copy()
        t_before = agent.actor_target.get_flat().copy()
        out = agent.update()
        assert out is not None and "critic_loss" in out
        assert not np.allclose(agent.actor.get_flat(), before)
        assert not np.allclose(agent.actor_target.get_flat(), t_before)

    def test_learns_state_independent_optimum(self, rng):
        """Reward peaks at a fixed action: DDPG should move toward it."""
        cfg = DdpgConfig(
            state_dim=3, action_dim=2, warmup=32, batch_size=32,
            noise_sigma=0.4, noise_decay=0.99, noise_mu=0.0,
        )
        agent = DdpgAgent(_actor_factory(rng), cfg, rng)
        target = np.array([0.8, 0.2])
        s = rng.random(3)
        for _ in range(400):
            a = agent.act(s)
            r = -float(np.sum((a - target) ** 2))
            s2 = rng.random(3)
            agent.observe(s, a, r, s2)
            agent.update()
            s = s2
        final = agent.act(rng.random(3), explore=False)
        assert np.abs(final - target).max() < 0.35


class TestDqn:
    def test_action_in_range(self, rng):
        agent = DqnAgent(DqnConfig(state_dim=2, num_actions=4, warmup=0), rng)
        agent.epsilon = 0.0
        for _ in range(10):
            assert 0 <= agent.act(rng.random(2)) < 4

    def test_epsilon_decays_to_floor(self, rng):
        cfg = DqnConfig(state_dim=2, num_actions=4, epsilon_decay=0.5, epsilon_end=0.1)
        agent = DqnAgent(cfg, rng)
        for _ in range(50):
            agent.observe(rng.random(2), 0, 0.0, rng.random(2))
        assert agent.epsilon == pytest.approx(0.1)

    def test_learns_bandit(self, rng):
        cfg = DqnConfig(state_dim=2, num_actions=4, warmup=16, batch_size=16)
        agent = DqnAgent(cfg, rng)
        for _ in range(300):
            s = rng.random(2)
            a = agent.act(s)
            agent.observe(s, a, 1.0 if a == 2 else 0.0, rng.random(2))
            agent.update()
        greedy = [agent.act(rng.random(2), explore=False) for _ in range(10)]
        assert greedy.count(2) >= 8

    def test_ddqn_flag_and_factory(self, rng):
        base = DqnConfig(state_dim=2, num_actions=3)
        agent = make_ddqn(base, rng)
        assert agent.cfg.double is True

    def test_target_sync(self, rng):
        cfg = DqnConfig(
            state_dim=2, num_actions=3, warmup=8, batch_size=8, target_sync_interval=2
        )
        agent = DqnAgent(cfg, rng)
        for _ in range(16):
            agent.observe(rng.random(2), 0, 1.0, rng.random(2))
        agent.update()
        assert not np.allclose(agent.q.get_flat(), agent.q_target.get_flat())
        agent.update()  # second update triggers sync
        assert np.allclose(agent.q.get_flat(), agent.q_target.get_flat())

    def test_action_grid(self):
        g = action_grid(2, 3)
        assert g.shape == (9, 2)
        assert np.allclose(g.min(axis=0), 0.0) and np.allclose(g.max(axis=0), 1.0)
        with pytest.raises(ValueError):
            action_grid(2, 1)


class TestSac:
    def test_actions_bounded(self, rng):
        agent = SacAgent(SacConfig(state_dim=3, action_dim=2, warmup=0), rng)
        for _ in range(20):
            a = agent.act(rng.random(3), explore=True)
            assert np.all((a > 0) & (a < 1))

    def test_deterministic_eval_action(self, rng):
        agent = SacAgent(SacConfig(state_dim=3, action_dim=2, warmup=0), rng)
        s = rng.random(3)
        a1 = agent.act(s, explore=False)
        a2 = agent.act(s, explore=False)
        assert np.allclose(a1, a2)

    def test_log_prob_reasonable(self, rng):
        agent = SacAgent(SacConfig(state_dim=3, action_dim=2), rng)
        _, logp, _ = agent.policy.sample(rng.random((16, 3)), rng)
        assert logp.shape == (16,)
        assert np.isfinite(logp).all()

    def test_update_runs_and_reports(self, rng):
        cfg = SacConfig(state_dim=3, action_dim=2, warmup=16, batch_size=16)
        agent = SacAgent(cfg, rng)
        for _ in range(32):
            s = rng.random(3)
            agent.observe(s, rng.random(2), -1.0, rng.random(3))
        out = agent.update()
        assert out is not None
        assert set(out) == {"critic_loss", "actor_loss", "entropy"}

    def test_learns_bandit(self, rng):
        cfg = SacConfig(state_dim=3, action_dim=2, warmup=32, batch_size=32, alpha=0.02)
        agent = SacAgent(cfg, rng)
        target = np.array([0.7, 0.3])
        s = rng.random(3)
        for _ in range(400):
            a = agent.act(s)
            r = -float(np.sum((a - target) ** 2))
            s2 = rng.random(3)
            agent.observe(s, a, r, s2)
            agent.update()
            s = s2
        final = agent.act(rng.random(3), explore=False)
        assert np.abs(final - target).max() < 0.35
