"""Configuration of the hierarchical fleet-RL layer.

:class:`HierConfig` is frozen and picklable so it can ride
:class:`~repro.cluster.sim.ClusterConfig` / ``FleetSpec`` into pool
workers, and hashable content (via :meth:`HierConfig.cache_payload`) so
grid cells with different hier settings never collide in the
content-addressed result cache.  A ``hier`` of ``None`` on the cluster
config is the off switch: no agent is built, no extra RNG stream is
drawn, no extra events are scheduled — the run stays bitwise identical
to one from before this package existed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = ["HierConfig", "HIER_ALGOS", "HIER_CONTROLS"]

#: Upper-level learner choices (the existing rl/ stack).
HIER_ALGOS = ("ddpg", "td3", "sac")
#: What the agent's action controls: per-node power budgets, dispatcher
#: routing weights, or both (action dim doubles).
HIER_CONTROLS = ("budget", "weights", "both")


@dataclass(frozen=True)
class HierConfig:
    """Static description of the fleet-level agent layer.

    Parameters
    ----------
    algo:
        Upper-level learner: ``"ddpg"`` (default), ``"td3"`` or ``"sac"``.
    control:
        ``"budget"`` — the action apportions the watt budget (dim N);
        ``"weights"`` — the action sets dispatcher routing weights
        (dim N, budget apportioning stays heuristic); ``"both"`` — dim 2N.
    train:
        Learn online during the run (the DeepPower convention: explore,
        observe, update every window).  ``False`` runs the actor frozen —
        the eval mode, and what the decision-overhead benchmark measures.
    agent_path:
        Optional ``.npz`` of fleet-agent network parameters to preload
        (saved by :meth:`~repro.hier.agent.FleetAgent.save`).
    energy_weight, sla_weight:
        Reward = ``-(energy_weight * fleet_power/budget
        + sla_weight * window_timeout_fraction)`` — the fleet-level
        analogue of the paper's power/QoS trade-off reward.
    hidden:
        Actor/critic hidden widths.  Exactly three entries (the SAC
        critic stack requires three).
    warmup, batch_size, buffer_capacity, noise_sigma, noise_decay,
    noise_min_sigma:
        Learner hyper-parameters, sized for window-scale (seconds, not
        milliseconds) decision cadence: small buffer, short warmup.
    shared_replay:
        Pool per-node DeepPower transitions through one
        :class:`~repro.hier.replay.SharedReplay` (``policy="deeppower"``
        fleets only; ignored otherwise).
    fed_avg_every:
        Coordination windows between federated parameter averages across
        the node agents (0 disables; requires ``shared_replay``).
    min_weight:
        Floor on learned dispatcher weights, so no live node is ever
        starved to zero routing probability by a cold actor.
    init_share:
        The untrained actor's operating point in [0, 1] (the sigmoid
        head's initial bias).  Defaults to 0.65 — roughly one DVFS level
        below the heuristic's operating point: a cold fleet agent starts
        *safe enough* to meet the SLA while exploration around the start
        point actually probes cheaper ceilings instead of saturating at
        the top of the table.
    """

    algo: str = "ddpg"
    control: str = "budget"
    train: bool = True
    agent_path: Optional[str] = None
    energy_weight: float = 1.0
    sla_weight: float = 2.0
    hidden: Tuple[int, ...] = (64, 32, 16)
    warmup: int = 8
    batch_size: int = 32
    buffer_capacity: int = 4096
    noise_sigma: float = 0.2
    noise_decay: float = 0.98
    noise_min_sigma: float = 0.02
    shared_replay: bool = False
    fed_avg_every: int = 0
    min_weight: float = 0.05
    init_share: float = 0.65

    def __post_init__(self) -> None:
        if self.algo not in HIER_ALGOS:
            raise ValueError(
                f"unknown hier algo {self.algo!r}; available: {HIER_ALGOS}"
            )
        if self.control not in HIER_CONTROLS:
            raise ValueError(
                f"unknown hier control {self.control!r}; "
                f"available: {HIER_CONTROLS}"
            )
        if len(self.hidden) != 3 or any(h < 1 for h in self.hidden):
            raise ValueError(
                f"hidden must be three positive widths, got {self.hidden!r}"
            )
        if self.warmup < 1:
            raise ValueError(f"warmup must be >= 1, got {self.warmup}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.buffer_capacity < self.batch_size:
            raise ValueError(
                f"buffer_capacity ({self.buffer_capacity}) must hold at "
                f"least one batch ({self.batch_size})"
            )
        if self.energy_weight < 0 or self.sla_weight < 0:
            raise ValueError("reward weights must be >= 0")
        if self.fed_avg_every < 0:
            raise ValueError(
                f"fed_avg_every must be >= 0, got {self.fed_avg_every}"
            )
        if self.fed_avg_every > 0 and not self.shared_replay:
            raise ValueError("fed_avg_every requires shared_replay")
        if not 0.0 < self.min_weight <= 1.0:
            raise ValueError(
                f"min_weight must be in (0, 1], got {self.min_weight}"
            )
        if not 0.0 < self.init_share < 1.0:
            raise ValueError(
                f"init_share must be in (0, 1), got {self.init_share}"
            )

    @property
    def controls_budget(self) -> bool:
        return self.control in ("budget", "both")

    @property
    def controls_weights(self) -> bool:
        return self.control in ("weights", "both")

    def cache_payload(self) -> dict:
        """Content for grid-cell cache keys (covers every learning-relevant
        field; ``agent_path`` enters as a content digest, not a path)."""
        from ..parallel.cache import file_digest

        return {
            "algo": self.algo,
            "control": self.control,
            "train": self.train,
            "agent_digest": (
                file_digest(self.agent_path) if self.agent_path else None
            ),
            "energy_weight": self.energy_weight,
            "sla_weight": self.sla_weight,
            "hidden": list(self.hidden),
            "warmup": self.warmup,
            "batch_size": self.batch_size,
            "buffer_capacity": self.buffer_capacity,
            "noise_sigma": self.noise_sigma,
            "noise_decay": self.noise_decay,
            "noise_min_sigma": self.noise_min_sigma,
            "shared_replay": self.shared_replay,
            "fed_avg_every": self.fed_avg_every,
            "min_weight": self.min_weight,
            "init_share": self.init_share,
        }
