"""Single CPU core model: frequency state, busy/idle, exact energy metering.

A core executes *work* measured in GHz-seconds (i.e. billions of cycles):
a request carrying ``work = w`` finishes after ``w / f`` seconds at a fixed
frequency ``f``.  When the frequency changes mid-request the owner (a
:class:`repro.server.worker.Worker`) is notified so it can re-derive the
completion time from the remaining work — this is what makes millisecond-
scale DVFS (the paper's thread controller) affect in-flight requests.

Energy is metered exactly: the core integrates ``P(f, busy)`` lazily,
accumulating on every state transition (frequency change, busy/idle edge)
and on demand at reads.  No sampling error is introduced, matching the
counter semantics of Intel RAPL.
"""

from __future__ import annotations

from typing import Callable, List

from ..sim.engine import Engine
from .dvfs import FrequencyTable
from .power import PowerModel

__all__ = ["Core"]

FreqListener = Callable[["Core", float, float], None]


class Core:
    """One physical core with DVFS and exact energy accounting.

    Parameters
    ----------
    engine:
        Simulation engine providing the virtual clock.
    core_id:
        Index within the CPU.
    table:
        DVFS frequency table; initial frequency is ``table.fmax``.
    power_model:
        Analytic power model used for energy integration.
    """

    def __init__(
        self,
        engine: Engine,
        core_id: int,
        table: FrequencyTable,
        power_model: PowerModel,
    ) -> None:
        self.engine = engine
        self.core_id = core_id
        self.table = table
        self.power_model = power_model

        self._freq = table.fmax
        self._busy = False
        self._energy = 0.0
        self._busy_time = 0.0
        self._last_t = engine.now
        self.switch_count = 0
        self._listeners: List[FreqListener] = []

    # ------------------------------------------------------------------ state

    @property
    def frequency(self) -> float:
        """Current frequency in GHz (always a table level)."""
        return self._freq

    @property
    def busy(self) -> bool:
        """Whether a request is currently executing on this core."""
        return self._busy

    def add_frequency_listener(self, fn: FreqListener) -> None:
        """Register ``fn(core, old_freq, new_freq)`` on every real change."""
        self._listeners.append(fn)

    # ----------------------------------------------------------------- control

    def set_frequency(self, freq: float, *, quantize: bool = True) -> float:
        """Set the core frequency; returns the (quantised) applied value.

        Equivalent to writing ``scaling_setspeed`` under the userspace
        governor: the request snaps to a P-state, and a no-op write (same
        level) costs nothing.
        """
        f = self.table.quantize(freq) if quantize else freq
        if f == self._freq:
            return f
        self._advance()
        old = self._freq
        self._freq = f
        self.switch_count += 1
        for fn in self._listeners:
            fn(self, old, f)
        return f

    def set_busy(self, busy: bool) -> None:
        """Mark the core busy (executing) or idle.  Idempotent."""
        if busy == self._busy:
            return
        self._advance()
        self._busy = busy

    # ----------------------------------------------------------------- meters

    def energy_joules(self) -> float:
        """Exact energy consumed by this core since construction (J)."""
        self._advance()
        return self._energy

    def busy_seconds(self) -> float:
        """Total time this core spent executing requests (s)."""
        self._advance()
        return self._busy_time

    def power_watts(self) -> float:
        """Instantaneous power draw (W) in the current state."""
        return self.power_model.core_power(self._freq, self._busy)

    # ----------------------------------------------------------------- compute

    def work_rate(self) -> float:
        """Work units retired per second at the current frequency.

        Work is measured in GHz-seconds, so the rate *is* the frequency.
        """
        return self._freq

    def time_for_work(self, work: float) -> float:
        """Seconds needed to retire ``work`` at the current frequency."""
        return work / self._freq

    # ---------------------------------------------------------------- internal

    def _advance(self) -> None:
        now = self.engine.now
        dt = now - self._last_t
        if dt > 0.0:
            self._energy += self.power_model.core_power(self._freq, self._busy) * dt
            if self._busy:
                self._busy_time += dt
            self._last_t = now
        elif dt < 0.0:  # pragma: no cover - clock never goes backwards
            raise RuntimeError("virtual clock moved backwards")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "busy" if self._busy else "idle"
        return f"Core(id={self.core_id}, {self._freq:.1f} GHz, {state})"
