"""Fig 5: the reward's queue-gating ``scaleFunc`` at eta = 100.

Analytic figure: ``scaleFunc(x) = (x/eta) / (x/eta + eta/(x+eps))`` is ~0
below eta, crosses 0.5 near x = eta (the red pentagram in the paper), and
converges to 1 as x grows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.reporting import sparkline
from ..core.reward import scale_func

__all__ = ["Fig5Result", "run_fig5", "render_fig5"]


@dataclass(frozen=True)
class Fig5Result:
    eta: float
    x: np.ndarray
    y: np.ndarray
    #: x where the function crosses 0.5 (the paper's "change point").
    change_point: float


def run_fig5(eta: float = 100.0, x_max: float = 500.0, n: int = 1000) -> Fig5Result:
    x = np.linspace(0.0, x_max, n)
    y = scale_func(x, eta=eta)
    above = np.nonzero(y >= 0.5)[0]
    change = float(x[above[0]]) if above.size else float("inf")
    return Fig5Result(eta=eta, x=x, y=y, change_point=change)


def render_fig5(result: Fig5Result) -> str:
    probes = [10, 50, 100, 200, 400]
    vals = "  ".join(f"f({p})={scale_func(p, result.eta):.3f}" for p in probes)
    return (
        f"scaleFunc, eta={result.eta:.0f}: change point (y=0.5) at x≈{result.change_point:.0f}\n"
        + "shape: " + sparkline(result.y, 80) + "\n"
        + vals
    )
