"""Deeper tests of individual experiment modules at tiny scale."""

import numpy as np
import pytest

from repro.cpu import DEFAULT_TABLE
from repro.experiments.fig4_controller import run_fig4
from repro.experiments.table3_load_latency import (
    render_table3,
    rps_for_measured_load,
    run_table3,
)
from repro.workload import get_app


class TestFig4:
    def test_trace_structure(self):
        res = run_fig4(window=0.3, full=False)  # 0.3 s physical -> 3 s dilated
        assert len(res.times) == len(res.frequency)
        assert len(res.param_updates) == 1
        # all frequencies are legal table levels
        for f in np.unique(res.frequency):
            assert f in DEFAULT_TABLE

    def test_param_update_changes_floor(self):
        res = run_fig4(
            window=0.4,
            params_before=(0.2, 0.5),
            params_after=(0.8, 0.5),
            full=False,
        )
        half = len(res.times) // 2
        floor_before = res.frequency[:half].min()
        floor_after = res.frequency[half + 2 :].min()
        assert floor_after > floor_before

    def test_requests_recorded_for_core(self):
        res = run_fig4(window=0.5, load=0.7, full=False)
        assert len(res.request_spans) >= 1
        for start, end in res.request_spans:
            assert end > start


class TestTable3:
    def test_measured_load_accounts_for_contention(self):
        app = get_app("masstree")
        nominal = app.rps_for_load(0.7, 4)
        measured = rps_for_measured_load(app, 0.7, 4)
        assert measured < nominal
        assert measured == pytest.approx(nominal / (1 + app.contention), rel=1e-9)

    def test_single_app_rows(self):
        res = run_table3(apps=["img-dnn"], loads=(0.2, 0.5), full=False)
        row = res["img-dnn"]
        assert set(row.p99_ms) == {0.2, 0.5}
        assert row.sla_ms == pytest.approx(50.0)
        assert row.p99_ms[0.5] > 0

    def test_render_contains_all_apps(self):
        res = run_table3(apps=["img-dnn", "xapian"], loads=(0.2,), full=False)
        out = render_table3(res)
        assert "img-dnn" in out and "xapian" in out


class TestFig7Helpers:
    def test_calibration_targets(self):
        from repro.experiments.fig7_main import calibration_target_for

        assert calibration_target_for("moses") == pytest.approx(0.85)
        assert calibration_target_for("img-dnn") == pytest.approx(0.5)
        assert calibration_target_for("xapian") == pytest.approx(0.7)

    def test_tuned_setup_uses_app_long_time(self):
        from repro.experiments.fig7_main import tuned_agent_setup

        sphinx = get_app("sphinx")
        _, cfg = tuned_agent_setup(seed=1, app=sphinx)
        assert cfg.long_time == pytest.approx(sphinx.long_time)
        assert cfg.long_time == pytest.approx(1.0)
        _, cfg_default = tuned_agent_setup(seed=1)
        assert cfg_default.long_time == pytest.approx(1.0)

    def test_reward_override_applied(self):
        from repro.experiments.fig7_main import tuned_agent_setup

        _, cfg = tuned_agent_setup(seed=1, app=get_app("sphinx"))
        assert cfg.reward.beta == pytest.approx(30.0)
        _, cfg = tuned_agent_setup(seed=1, app=get_app("xapian"))
        assert cfg.reward.beta == pytest.approx(26.0)
        _, cfg = tuned_agent_setup(seed=1, app=get_app("moses"))
        assert cfg.reward.beta == pytest.approx(20.0)

    def test_agent_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path))
        from repro.experiments.fig7_main import _agent_cache_path
        from repro.experiments.scenarios import SMOKE

        p = _agent_cache_path("xapian", SMOKE, 7)
        assert str(tmp_path) in p and "xapian" in p and p.endswith(".npz")
