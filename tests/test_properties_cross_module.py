"""Cross-module property tests: invariants the whole stack must uphold."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ThreadController
from repro.cpu import DEFAULT_POWER_MODEL, DEFAULT_TABLE, Cpu, PowerMonitor
from repro.experiments.runner import build_context
from repro.server import Server
from repro.sim import Engine, RngRegistry
from repro.workload import (
    LognormalCorrelatedService,
    OpenLoopSource,
    constant_trace,
    diurnal_trace,
)
from repro.workload.apps import AppSpec


def _app(sla=0.06, mean=0.02, sigma=0.6, rho=0.7, contention=0.3):
    return AppSpec(
        name="prop",
        sla=sla,
        service=LognormalCorrelatedService(mean_work=mean, sigma=sigma, rho=rho),
        contention=contention,
        short_time=0.002,
    )


class TestEnergyInvariants:
    @given(
        seed=st.integers(0, 5000),
        load=st.floats(min_value=0.1, max_value=0.7),
    )
    @settings(max_examples=10, deadline=None)
    def test_energy_monotone_and_bounded(self, seed, load):
        """Socket energy grows monotonically and lies between the all-idle-
        at-fmin and all-busy-at-turbo envelopes."""
        app = _app()
        engine = Engine()
        rngs = RngRegistry(seed)
        cpu = Cpu(engine, 2)
        srv = Server(engine, cpu, app)
        src = OpenLoopSource(
            engine, constant_trace(app.rps_for_load(load, 2), 5.0),
            app.service, app.sla, srv.submit, rngs.get("a"),
        )
        src.start()
        prev = 0.0
        for t in np.linspace(0.5, 5.0, 10):
            engine.run_until(t)
            e = cpu.energy_joules()
            assert e >= prev
            prev = e
        pm = DEFAULT_POWER_MODEL
        lo = pm.socket_power(np.full(2, 0.8), np.zeros(2, dtype=bool)) * 5.0
        hi = pm.socket_power(np.full(2, 3.0), np.ones(2, dtype=bool)) * 5.0
        assert lo <= cpu.energy_joules() <= hi

    def test_rapl_window_sum_equals_total(self):
        """Sum of window readings == total energy (no double counting)."""
        engine = Engine()
        cpu = Cpu(engine, 3)
        mon = PowerMonitor(engine, cpu)
        total = 0.0
        rng = np.random.default_rng(0)
        for _ in range(40):
            cpu.set_all_frequencies(float(rng.choice([0.8, 1.5, 3.0])))
            engine.run_until(engine.now + float(rng.uniform(0.01, 0.5)))
            total += mon.window_energy()
        assert total == pytest.approx(mon.total_energy(), rel=1e-9)


class TestLatencyInvariants:
    @given(seed=st.integers(0, 5000))
    @settings(max_examples=8, deadline=None)
    def test_latency_decomposition(self, seed):
        """latency == queue_time + service_time for every completion, and
        service_time >= work / turbo (nothing runs faster than turbo)."""
        app = _app()
        engine = Engine()
        rngs = RngRegistry(seed)
        cpu = Cpu(engine, 2)
        srv = Server(engine, cpu, app, keep_requests=True)
        tc = ThreadController(engine, srv)
        tc.set_params(0.4, 0.8)
        tc.start()
        src = OpenLoopSource(
            engine, constant_trace(app.rps_for_load(0.5, 2), 4.0),
            app.service, app.sla, srv.submit, rngs.get("a"),
        )
        src.start()
        engine.run_until(5.0)
        done = [r for r in srv.metrics.requests if r.finish_time is not None]
        assert len(done) > 20
        for r in done:
            assert r.latency == pytest.approx(r.queue_time + r.service_time)
            assert r.service_time >= r.effective_work / DEFAULT_TABLE.turbo - 1e-9
            assert r.service_time <= r.effective_work / DEFAULT_TABLE.fmin + 1e-9

    @given(load=st.floats(min_value=0.05, max_value=0.5), seed=st.integers(0, 1000))
    @settings(max_examples=8, deadline=None)
    def test_faster_cpu_never_hurts_mean_latency(self, load, seed):
        """Same arrivals: turbo-everywhere mean latency <= fmin-everywhere."""
        results = {}
        app = _app()
        for freq in (DEFAULT_TABLE.fmin, DEFAULT_TABLE.turbo):
            engine = Engine()
            rngs = RngRegistry(seed)
            cpu = Cpu(engine, 2)
            cpu.set_all_frequencies(freq)
            srv = Server(engine, cpu, app)
            src = OpenLoopSource(
                engine, constant_trace(app.rps_for_load(load, 2), 4.0),
                app.service, app.sla, srv.submit, rngs.get("a"),
            )
            src.start()
            engine.run_until(6.0)
            results[freq] = srv.metrics.mean_latency()
        assert results[DEFAULT_TABLE.turbo] <= results[DEFAULT_TABLE.fmin] + 1e-9


class TestControllerInvariants:
    @given(
        bf=st.floats(min_value=0.0, max_value=1.0),
        sc=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=10, deadline=None)
    def test_controller_frequencies_never_below_base_floor(self, bf, sc):
        """While the controller runs, no worker core sits below the
        BaseFreq-interpolated floor."""
        app = _app()
        ctx = build_context(app, constant_trace(app.rps_for_load(0.4, 2), 2.0), 2, 7)
        tc = ThreadController(ctx.engine, ctx.server)
        tc.set_params(bf, sc)
        tc.start()
        ctx.source.start()
        floor = DEFAULT_TABLE.quantize(DEFAULT_TABLE.from_score(bf))
        for t in np.linspace(0.2, 2.0, 8):
            ctx.engine.run_until(t)
            for w in ctx.server.workers:
                assert w.core.frequency >= floor - 1e-9


class TestTraceInvariants:
    @given(seed=st.integers(0, 10_000), duration=st.floats(20.0, 200.0))
    @settings(max_examples=15, deadline=None)
    def test_diurnal_trace_wellformed(self, seed, duration):
        rngs = RngRegistry(seed)
        t = diurnal_trace(rngs.get("d"), duration=duration, num_segments=24)
        assert t.duration == pytest.approx(duration)
        assert (t.rates > 0).all()
        assert np.all(np.diff(t.edges) > 0)
        assert t.expected_requests() == pytest.approx(
            float(np.sum(t.rates * np.diff(t.edges)))
        )
