"""End-to-end tests: instrumented runtime/runner/grid produce faithful traces."""

import math
import os

from repro.baselines import MaxFrequencyPolicy
from repro.core import DeepPowerAgent, default_ddpg_config
from repro.core.runtime import DeepPowerConfig, DeepPowerRuntime
from repro.core.training import train_deeppower
from repro.experiments.runner import build_context, run_policy
from repro.obs import Observability, TraceWriter, read_trace, summarize_trace
from repro.parallel import RunSpec, grid_trace_path, run_grid
from repro.sim import RngRegistry
from repro.workload import constant_trace


def _agent(seed=3):
    return DeepPowerAgent(
        RngRegistry(seed).get("agent"), default_ddpg_config(warmup=4, batch_size=8)
    )


def _traced_training(tiny_app, tmp_path, episodes=2, duration=4.0):
    trace_path = str(tmp_path / "train.trace.jsonl")
    wl = constant_trace(tiny_app.rps_for_load(0.4, 2), duration)
    result = train_deeppower(
        tiny_app,
        wl,
        episodes=episodes,
        num_cores=2,
        seed=5,
        agent=_agent(),
        keep_histories=True,
        trace_out=trace_path,
    )
    return result, trace_path


class TestTraceMatchesInMemoryHistory:
    def test_summarize_rebuilds_step_history_exactly(self, tiny_app, tmp_path):
        result, trace_path = _traced_training(tiny_app, tmp_path)
        summary = summarize_trace(trace_path)
        per_ep = {}
        for row in summary.intervals:
            per_ep.setdefault(row["episode"], []).append(row)
        assert sorted(per_ep) == [0, 1]
        for ep, hist in enumerate(result.histories):
            rows = per_ep[ep]
            # Bitwise equality: JSON floats round-trip exactly.
            assert [r["reward"] for r in rows] == list(hist["rewards"])
            assert [r["avg_freq"] for r in rows] == list(hist["avg_frequency"])
            assert [[r["base_freq"], r["scaling_coef"]] for r in rows] == [
                list(a) for a in hist["actions"]
            ]

    def test_episode_and_run_events_present(self, tiny_app, tmp_path):
        result, trace_path = _traced_training(tiny_app, tmp_path)
        s = summarize_trace(trace_path)
        assert s.counts["episode-start"] == 2 and s.counts["episode-end"] == 2
        assert s.counts["run-start"] == 2 and s.counts["run-summary"] == 2
        assert s.counts["rapl-window"] >= s.counts["drl-step"]
        assert s.counts["controller-window"] == s.counts["drl-step"]
        assert s.meta["mode"] == "train"
        # episode-end events mirror the in-memory EpisodeStats.
        assert [e["total_reward"] for e in s.episodes] == [
            e.total_reward for e in result.episodes
        ]

    def test_controller_window_accounts_every_tick(self, tiny_app, tmp_path):
        _, trace_path = _traced_training(tiny_app, tmp_path, episodes=1)
        windows = [e for e in read_trace(trace_path) if e["kind"] == "controller-window"]
        assert windows
        for w in windows:
            assert w["ticks"] > 0
            assert w["freq_min"] <= w["freq_mean"] <= w["freq_max"]
            assert w["dvfs_switches"] >= 0


class TestObsDefaultOff:
    def test_runtime_without_obs_has_no_sinks(self, tiny_app):
        ctx = build_context(tiny_app, constant_trace(20.0, 1.0), 2, seed=1)
        rt = DeepPowerRuntime(
            ctx.engine, ctx.server, ctx.monitor, _agent(), DeepPowerConfig()
        )
        assert rt.obs is None and rt._trace is None and rt._spans is None
        assert ctx.engine.spans is None
        rt.start()
        ctx.source.start()
        ctx.engine.run_until(1.0)
        rt.stop()
        assert rt.step_count > 0  # the control loop itself is unaffected

    def test_run_policy_without_obs_unchanged(self, tiny_app):
        res = run_policy(
            lambda ctx: MaxFrequencyPolicy(ctx),
            tiny_app,
            constant_trace(20.0, 1.0),
            2,
            seed=1,
        )
        assert res.metrics.completed > 0


class TestControllerWindowStats:
    def test_window_summary_resets(self, tiny_app):
        ctx = build_context(tiny_app, constant_trace(20.0, 1.0), 2, seed=1)
        from repro.core.thread_controller import ThreadController

        tc = ThreadController(ctx.engine, ctx.server)
        tc.enable_window_stats()
        tc.start()
        ctx.engine.run_until(0.1)
        s1 = tc.window_summary()
        assert s1["ticks"] > 0
        assert s1["freq_min"] <= s1["freq_mean"] <= s1["freq_max"]
        s2 = tc.window_summary()  # immediately after reset: empty window
        assert s2["ticks"] == 0
        assert math.isnan(s2["freq_mean"]) and math.isnan(s2["freq_min"])

    def test_bind_spans_times_ticks(self, tiny_app):
        from repro.core.thread_controller import ThreadController
        from repro.obs import SpanRecorder

        ctx = build_context(tiny_app, constant_trace(20.0, 1.0), 2, seed=1)
        tc = ThreadController(ctx.engine, ctx.server)
        spans = SpanRecorder()
        tc.bind_spans(spans)
        tc.start()
        ctx.engine.run_until(0.05)
        assert spans.stats()["controller.tick"]["count"] == tc.tick_count > 0


class TestDegenerateRunWarning:
    def test_zero_completion_run_emits_warning_and_nan_metrics(self, tiny_app, tmp_path):
        trace_path = str(tmp_path / "empty.trace.jsonl")
        obs = Observability(trace=TraceWriter(trace_path))
        res = run_policy(
            lambda ctx: MaxFrequencyPolicy(ctx),
            tiny_app,
            constant_trace(0.0, 1.0),  # no arrivals at all
            2,
            seed=1,
            obs=obs,
        )
        obs.close()
        assert res.metrics.completed == 0
        assert math.isnan(res.metrics.tail_latency)
        assert math.isnan(res.metrics.timeout_rate)
        assert not res.metrics.sla_met
        s = summarize_trace(trace_path)
        assert s.warnings and s.warnings[0]["warning"] == "zero-completions"
        # run-summary round-trips the NaN metrics.
        assert math.isnan(s.run_summaries[0]["tail_latency"])
        assert s.run_summaries[0]["sla_met"] is False


class TestGridTracing:
    def _spec(self, tiny_app_rate, seed=2, **kw):
        return RunSpec(
            app="xapian",
            policy="baseline",
            trace=constant_trace(tiny_app_rate, 1.0),
            num_cores=2,
            seed=seed,
            **kw,
        )

    def test_trace_dir_writes_one_trace_per_cell(self, tmp_path):
        trace_dir = str(tmp_path / "traces")
        specs = [self._spec(30.0, seed=s) for s in (1, 2)]
        outcomes = run_grid(specs, trace_dir=trace_dir)
        assert all(o.ok for o in outcomes)
        files = sorted(os.listdir(trace_dir))
        assert len(files) == 2
        for f in files:
            s = summarize_trace(os.path.join(trace_dir, f))
            assert s.counts["run-summary"] == 1
            assert s.meta["policy"] == "baseline"

    def test_traced_cells_bypass_cache_read(self, tmp_path):
        from repro.parallel import RunResultCache

        cache = RunResultCache(str(tmp_path / "cache"))
        spec = self._spec(30.0)
        (first,) = run_grid([spec], cache=cache)
        assert not first.from_cache
        # Untraced rerun: served from cache.
        (hit,) = run_grid([spec], cache=cache)
        assert hit.from_cache
        # Traced rerun: must execute (else no trace file would appear).
        trace_dir = str(tmp_path / "traces")
        (traced,) = run_grid([spec], cache=cache, trace_dir=trace_dir)
        assert not traced.from_cache
        assert os.listdir(trace_dir)
        assert traced.metrics.completed == first.metrics.completed

    def test_trace_out_excluded_from_cache_key(self, tmp_path):
        from repro.parallel.cache import content_key

        spec = self._spec(30.0)
        traced = self._spec(30.0, trace_out=str(tmp_path / "x.jsonl"))
        assert content_key(spec.cache_payload()) == content_key(traced.cache_payload())

    def test_grid_trace_path_is_deterministic(self, tmp_path):
        spec = self._spec(30.0, label="fig7-quick")
        p = grid_trace_path(str(tmp_path), spec, 4)
        assert p.endswith("004-fig7-quick-xapian-seed2.trace.jsonl")


class TestRaplObs:
    def test_rapl_glitch_counted_and_traced(self, tmp_path, engine, cpu):
        from repro.cpu.rapl import PowerMonitor

        trace_path = str(tmp_path / "rapl.trace.jsonl")
        obs = Observability(trace=TraceWriter(trace_path))
        mon = PowerMonitor(engine, cpu)
        mon.bind_obs(obs)
        engine.run_until(1.0)
        assert mon.window_energy() > 0
        mon._note_glitch(-5.0, 0.0)
        obs.close()
        assert obs.metrics.counter("rapl.glitches").value == 1
        kinds = [e["kind"] for e in read_trace(trace_path)]
        assert "rapl-window" in kinds and "rapl-glitch" in kinds


class TestSpanProfiling:
    def test_profiled_training_reports_hot_spans(self, tiny_app, tmp_path):
        metrics_path = str(tmp_path / "m.json")
        wl = constant_trace(tiny_app.rps_for_load(0.4, 2), 2.0)
        train_deeppower(
            tiny_app,
            wl,
            episodes=1,
            num_cores=2,
            seed=5,
            agent=_agent(),
            metrics_out=metrics_path,
            profile=True,
        )
        import json

        payload = json.load(open(metrics_path))
        spans = payload["spans"]
        assert spans["controller.tick"]["count"] > 0
        assert spans["engine.run_until"]["count"] > 0
        assert spans["agent.update"]["count"] > 0
        assert payload["counters"]["drl.steps"] > 0
