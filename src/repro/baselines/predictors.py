"""Service-time predictors used by the prediction-based baselines.

ReTail (Chen et al., HPCA'22) argues a linear regression over request
features is accurate enough; Gemini (Zhou et al., MICRO'20) fits a small
neural network.  Both are *profiled offline at a fixed load* — which is
exactly the weakness §3.1 of the DeepPower paper demonstrates (Fig 2):
contention couples service time to load, so a model trained at load i
mispredicts at load j.

Predictors here model **work** (GHz-seconds): callers convert to time via
the candidate frequency (``time = work / freq``), which is how both papers
use their predictions for frequency selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..nn.network import MLP
from ..server.server import contention_inflation
from ..nn.optim import Adam
from ..nn.losses import mse_loss
from ..workload.apps import AppSpec

__all__ = [
    "ServicePredictor",
    "LinearServicePredictor",
    "MlpServicePredictor",
    "profile_app",
    "relative_rmse_matrix",
]


def profile_app(
    app: AppSpec,
    rng: np.random.Generator,
    n: int = 2000,
    load: float = 0.5,
) -> Tuple[np.ndarray, np.ndarray]:
    """Offline profiling pass: sample (features, observed work) at ``load``.

    The observed work includes the contention inflation a request would
    experience at the given utilisation — profiling measures wall-clock
    service times on a machine running at that load, so the inflation is
    baked into the training data, exactly as in the original systems.
    """
    if not 0.0 <= load <= 1.0:
        raise ValueError("load must be in [0, 1]")
    works, feats = app.service.sample_batch(rng, n)
    mean_work = app.service.expected_work()
    # Same size-dependent interference a live run applies at dispatch.
    inflation = contention_inflation(app.contention, load, works, mean_work)
    return feats, works * inflation


class ServicePredictor:
    """Interface: fit on (features, work), predict work."""

    def fit(self, features: np.ndarray, works: np.ndarray) -> None:
        raise NotImplementedError

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted work, shape (n,). Accepts (n, d) or a single (d,)."""
        raise NotImplementedError

    def predict_one(self, features: np.ndarray) -> float:
        return float(self.predict(features.reshape(1, -1))[0])

    def rmse(self, features: np.ndarray, works: np.ndarray) -> float:
        """Root mean squared prediction error on a labelled set."""
        err = self.predict(features) - works
        return float(np.sqrt(np.mean(err * err)))

    #: Standard deviation of training residuals, set by ``fit``.  Consumers
    #: (ReTail's padding, Gemini's stage-1 margin) use it to budget for
    #: prediction error, as the original systems do with error quantiles.
    residual_std_: float = 0.0

    def _record_residuals(self, features: np.ndarray, works: np.ndarray) -> None:
        err = self.predict(features) - works
        self.residual_std_ = float(np.std(err))


@dataclass
class LinearServicePredictor(ServicePredictor):
    """Ordinary least squares with intercept (ReTail's model).

    Fits in closed form; prediction is a dot product — the "learning
    simplicity" ReTail opts for.  Negative predictions are clamped to a
    small positive floor (a service time cannot be negative).
    """

    ridge: float = 1e-8
    coef_: Optional[np.ndarray] = None
    intercept_: float = 0.0
    floor: float = 1e-9

    def fit(self, features: np.ndarray, works: np.ndarray) -> None:
        x = np.asarray(features, dtype=float)
        y = np.asarray(works, dtype=float)
        if x.ndim != 2 or y.ndim != 1 or len(x) != len(y):
            raise ValueError("need features (n, d) and works (n,)")
        xa = np.hstack([x, np.ones((len(x), 1))])
        gram = xa.T @ xa + self.ridge * np.eye(xa.shape[1])
        beta = np.linalg.solve(gram, xa.T @ y)
        self.coef_ = beta[:-1]
        self.intercept_ = float(beta[-1])
        self._record_residuals(x, y)

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.coef_ is None:
            raise RuntimeError("predictor is not fitted")
        x = np.asarray(features, dtype=float)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        return np.maximum(x @ self.coef_ + self.intercept_, self.floor)


class MlpServicePredictor(ServicePredictor):
    """Small fully-connected regressor (Gemini's model).

    Trained with minibatch Adam on standardised features/targets; can
    exploit the nonlinear feature components a linear model misses.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        hidden: Tuple[int, ...] = (16, 16),
        epochs: int = 60,
        batch_size: int = 64,
        lr: float = 3e-3,
    ) -> None:
        self.rng = rng
        self.hidden = hidden
        self.epochs = epochs
        self.batch_size = batch_size
        self.lr = lr
        self.net: Optional[MLP] = None
        self._x_mean = self._x_std = None
        self._y_mean = self._y_std = None
        self.floor = 1e-9

    def fit(self, features: np.ndarray, works: np.ndarray) -> None:
        x = np.asarray(features, dtype=float)
        y = np.asarray(works, dtype=float)
        if x.ndim != 2 or y.ndim != 1 or len(x) != len(y):
            raise ValueError("need features (n, d) and works (n,)")
        self._x_mean = x.mean(axis=0)
        self._x_std = x.std(axis=0) + 1e-9
        self._y_mean = float(y.mean())
        self._y_std = float(y.std() + 1e-12)
        xs = (x - self._x_mean) / self._x_std
        ys = ((y - self._y_mean) / self._y_std).reshape(-1, 1)

        self.net = MLP([x.shape[1], *self.hidden, 1], self.rng)
        opt = Adam(self.net.parameters(), lr=self.lr)
        n = len(xs)
        for _ in range(self.epochs):
            order = self.rng.permutation(n)
            for i in range(0, n, self.batch_size):
                idx = order[i : i + self.batch_size]
                pred = self.net.forward(xs[idx])
                _, grad = mse_loss(pred, ys[idx])
                self.net.zero_grad()
                self.net.backward(grad)
                opt.step()
        self._record_residuals(x, y)

    def predict(self, features: np.ndarray) -> np.ndarray:
        if self.net is None:
            raise RuntimeError("predictor is not fitted")
        x = np.asarray(features, dtype=float)
        if x.ndim == 1:
            x = x.reshape(1, -1)
        xs = (x - self._x_mean) / self._x_std
        y = self.net.forward(xs)[:, 0] * self._y_std + self._y_mean
        return np.maximum(y, self.floor)


def relative_rmse_matrix(
    app: AppSpec,
    loads,
    rng: np.random.Generator,
    n_train: int = 2000,
    n_test: int = 2000,
    predictor_factory=None,
) -> np.ndarray:
    """The paper's Fig 2 statistic.

    Entry (i, j) is ``RMSE(model_i on data_j) / RMSE(model_j on data_j)``:
    how much worse a model trained at load i predicts load j than the
    matched model.  The diagonal is 1 by construction; off-diagonal growth
    demonstrates load-transfer degradation.
    """
    loads = list(loads)
    factory = predictor_factory or (lambda: LinearServicePredictor())
    models = []
    for ld in loads:
        f, w = profile_app(app, rng, n_train, ld)
        m = factory()
        m.fit(f, w)
        models.append(m)
    test_sets = [profile_app(app, rng, n_test, ld) for ld in loads]
    k = len(loads)
    out = np.zeros((k, k))
    base = np.array([models[j].rmse(*test_sets[j]) for j in range(k)])
    for i in range(k):
        for j in range(k):
            out[i, j] = models[i].rmse(*test_sets[j]) / max(base[j], 1e-15)
    return out
