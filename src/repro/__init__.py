"""DeepPower reproduction: DRL-based hierarchical power management for
latency-critical multi-core systems (Zhang et al., ICPP 2023).

Package map
-----------
``repro.sim``
    Discrete-event simulation kernel (virtual clock, event heap, RNG).
``repro.cpu``
    Multicore CPU substrate: DVFS table, power model, RAPL monitor,
    cpufreq governors.
``repro.workload``
    Tailbench-like apps, service-time processes, diurnal RPS traces,
    open-loop arrivals.
``repro.server``
    The latency-critical server: queue, worker threads, metrics, telemetry.
``repro.nn`` / ``repro.rl``
    Numpy neural-network substrate and the DRL algorithms (DDPG, DQN,
    DDQN, SAC).
``repro.core``
    DeepPower itself: thread controller (Algorithm 1), state observer,
    reward calculator, DDPG agent, hierarchical runtime (Algorithm 2).
``repro.baselines``
    Comparison policies: baseline (max frequency), ReTail, Gemini, cpufreq
    governors, oracle.
``repro.faults``
    Fault injection (sensor/actuator/agent) and the runtime watchdog.
``repro.checkpoint``
    Crash-safe snapshots (atomic, CRC-checked, rotating) and the
    ``state_dict`` protocol powering deterministic resume.
``repro.experiments``
    One module per paper table/figure plus ablations; see DESIGN.md.

Quickstart
----------
>>> from repro.experiments import get_experiment
>>> print(get_experiment("fig5").execute())  # doctest: +SKIP
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
