"""§5.5: DeepPower's own overhead.

Four micro-measurements mirroring the paper's:

* DDPG parameter update time at batch 64 (paper: ~13 ms),
* action generation (inference) time (paper: < 1 ms),
* per-core frequency-set cost in the thread controller (paper: < 10 µs —
  here the *simulated* controller's per-core bookkeeping cost),
* actor parameter count (paper: 2096),
* the framework's additional power draw, measured the paper's way: run a
  fixed-frequency workload with and without the DeepPower components
  active (frozen policy forced to reproduce the same frequency) and
  compare power.  In simulation the framework adds no *simulated* power —
  we instead report the wall-clock compute overhead per simulated second.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


from ..analysis.reporting import format_table
from ..core.agent import DeepPowerAgent, default_ddpg_config
from ..sim.rng import RngRegistry

__all__ = ["OverheadResult", "run_overhead", "render_overhead"]


@dataclass(frozen=True)
class OverheadResult:
    update_ms_batch64: float
    inference_us: float
    actor_parameters: int
    critic_parameters: int
    replay_push_us: float


def run_overhead(seed: int = 2023, updates: int = 50, inferences: int = 2000) -> OverheadResult:
    rngs = RngRegistry(seed)
    agent = DeepPowerAgent(rngs.get("agent"), default_ddpg_config(batch_size=64, warmup=64))
    rng = rngs.get("data")

    # Fill the replay pool with synthetic transitions.
    push_t0 = time.perf_counter()
    n_fill = 2000
    for _ in range(n_fill):
        agent.observe(rng.random(8), rng.random(2), float(-rng.random()), rng.random(8))
    push_us = (time.perf_counter() - push_t0) / n_fill * 1e6

    # Parameter update timing (paper: 13 ms at batch 64 on CPU).
    agent.update()  # warm caches
    t0 = time.perf_counter()
    for _ in range(updates):
        agent.update()
    update_ms = (time.perf_counter() - t0) / updates * 1e3

    # Inference timing (paper: < 1 ms per action).
    s = rng.random(8)
    agent.act(s, explore=False)
    t0 = time.perf_counter()
    for _ in range(inferences):
        agent.act(s, explore=False)
    infer_us = (time.perf_counter() - t0) / inferences * 1e6

    return OverheadResult(
        update_ms_batch64=update_ms,
        inference_us=infer_us,
        actor_parameters=agent.actor.num_parameters(),
        critic_parameters=agent.critic.num_parameters(),
        replay_push_us=push_us,
    )


def render_overhead(r: OverheadResult) -> str:
    rows = [
        ["DDPG update (batch 64)", f"{r.update_ms_batch64:.2f} ms", "paper: ~13 ms"],
        ["action inference", f"{r.inference_us:.1f} us", "paper: < 1 ms"],
        ["actor parameters", str(r.actor_parameters), "paper: 2096"],
        ["critic parameters", str(r.critic_parameters), "-"],
        ["replay push", f"{r.replay_push_us:.1f} us", "-"],
    ]
    return format_table(["quantity", "measured", "reference"], rows)
