"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "table2" in out

    def test_experiment_fig5(self, capsys):
        assert main(["experiment", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "scaleFunc" in out

    def test_experiment_unknown_raises(self):
        with pytest.raises(KeyError):
            main(["experiment", "fig99"])

    def test_compare_rejects_unknown_policy(self, capsys):
        rc = main(["compare", "--app", "xapian", "--policies", "nonsense"])
        assert rc == 2

    def test_train_parser_defaults(self):
        args = build_parser().parse_args(["train", "--app", "moses"])
        assert args.app == "moses"
        assert args.episodes == 0
        assert args.fn is not None
