"""Fleet dispatcher: split one arrival stream across nodes.

The cluster plays a *single* diurnal RPS trace through one
:class:`~repro.workload.arrivals.OpenLoopSource` whose sink is
:meth:`Dispatcher.submit`; the dispatcher picks a node per request via a
pluggable router.  Three routers cover the classic trade-off space:

* :class:`RoundRobinRouter` — oblivious cycling; the fairness baseline.
* :class:`JoinShortestQueueRouter` — classic JSQ on instantaneous backlog
  (queued + in-service); near-optimal for homogeneous servers.
* :class:`PowerAwareRouter` — backlog weighted by current worker-core
  compute capacity (sum of GHz), so nodes the power-cap coordinator
  throttled — or whose policy parked cores at low frequency — receive
  proportionally less traffic.  This is the routing half of the
  hierarchical dispatch + per-server power management split of Liu et
  al.'s cloud resource-allocation framework.

Routers are deterministic functions of observable node state (no RNG), so
fleet runs stay seed-reproducible: same seed, same arrivals, same routing
decisions.  Ties break toward the lowest node id.

Health awareness lives one level up, in :class:`Dispatcher`: routers only
ever see the *candidate* list — down nodes are filtered out before
``select`` runs, and degraded nodes are probabilistically de-weighted
(dropped from the candidate set with probability ``degraded_penalty``,
never hard-excluded) whenever a non-degraded alternative exists.  The
de-weighting RNG is a dedicated seeded stream, and it is only drawn when a
degraded candidate actually exists, so fault-free fleets make bitwise the
same routing decisions as a dispatcher with health awareness disabled.
:class:`StragglerDetector` closes the loop, flipping nodes between
``healthy`` and ``degraded`` from windowed tail-latency observations.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from .node import DEGRADED, HEALTHY, ClusterNode

__all__ = [
    "Router",
    "RoundRobinRouter",
    "JoinShortestQueueRouter",
    "PowerAwareRouter",
    "ROUTERS",
    "Dispatcher",
    "StragglerDetector",
]


class Router:
    """Routing policy: pick the node index for the next request."""

    name = "abstract"

    def select(self, nodes: Sequence[ClusterNode]) -> int:
        raise NotImplementedError


class RoundRobinRouter(Router):
    """Cycle through nodes in id order, one request each.

    The cursor tracks *node ids*, not list positions, so the rotation stays
    stable when the candidate list shrinks mid-run (a node went down): the
    next request goes to the first surviving node at-or-after the cursor,
    wrapping cyclically.  On a full, never-shrinking fleet this reduces
    exactly to ``0, 1, ..., N-1, 0, ...``.
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def select(self, nodes: Sequence[ClusterNode]) -> int:
        chosen = None
        for i, node in enumerate(nodes):
            if node.node_id >= self._next:
                chosen = i
                break
        if chosen is None:  # cursor past every candidate: wrap around
            chosen = 0
        self._next = nodes[chosen].node_id + 1
        return chosen

    def select_batch(self, batch, cand_idx: np.ndarray) -> int:
        # cand_idx holds node ids in ascending order, so the linear scan
        # for the first id >= cursor is a searchsorted.
        pos = int(np.searchsorted(cand_idx, self._next))
        if pos == cand_idx.size:  # cursor past every candidate: wrap
            pos = 0
        self._next = int(cand_idx[pos]) + 1
        return pos


class JoinShortestQueueRouter(Router):
    """Send each request to the node with the smallest backlog.

    Backlog counts queued *and* in-service requests — plain queue length
    would read an all-workers-busy, empty-queue node as idle.
    """

    name = "jsq"

    def select(self, nodes: Sequence[ClusterNode]) -> int:
        best, best_load = 0, None
        for i, node in enumerate(nodes):
            load = node.backlog()
            if best_load is None or load < best_load:
                best, best_load = i, load
        return best

    def select_batch(self, batch, cand_idx: np.ndarray) -> int:
        # argmin returns the first minimum — identical tie-break to the
        # scalar strict-< scan above (and backlogs are exact integers).
        return int(np.argmin(batch.backlog[cand_idx]))


class PowerAwareRouter(Router):
    """JSQ weighted by each node's current frequency: argmin backlog/GHz.

    The drain-time estimate for node ``i`` is ``(backlog_i + 1) /
    capacity_i`` where capacity is the summed worker-core frequency — the
    ``+ 1`` accounts for the request being routed, so an idle slow node
    does not tie an idle fast one.  Nodes the coordinator throttled to a
    low ceiling look slower and shed load to unthrottled siblings, which
    is what lets a power-capped fleet keep tail latency: traffic follows
    the watts.
    """

    name = "power-aware"

    def select(self, nodes: Sequence[ClusterNode]) -> int:
        best, best_cost = 0, None
        for i, node in enumerate(nodes):
            capacity = node.worker_capacity_ghz()
            # A fully-parked node still drains eventually; keep the cost
            # finite so it can be chosen once every alternative is worse.
            cost = (node.backlog() + 1) / max(capacity, 1e-9)
            if best_cost is None or cost < best_cost:
                best, best_cost = i, cost
        return best

    def select_batch(self, batch, cand_idx: np.ndarray) -> int:
        # Same doubles as the scalar scan: per-row capacity sums over the
        # identical W values, the same (backlog + 1) / max(cap, 1e-9)
        # division, first-minimum tie-break.
        caps = batch.worker_capacities(cand_idx)
        np.maximum(caps, 1e-9, out=caps)
        cost = (batch.backlog[cand_idx] + 1) / caps
        return int(np.argmin(cost))


#: Routing-policy name -> zero-argument constructor.
ROUTERS: Dict[str, Callable[[], Router]] = {
    RoundRobinRouter.name: RoundRobinRouter,
    JoinShortestQueueRouter.name: JoinShortestQueueRouter,
    PowerAwareRouter.name: PowerAwareRouter,
}


def make_router(name: str) -> Router:
    """Instantiate a router by registry name."""
    try:
        return ROUTERS[name]()
    except KeyError:
        raise KeyError(
            f"unknown routing policy {name!r}; available: {sorted(ROUTERS)}"
        ) from None


class Dispatcher:
    """Route requests from one shared arrival stream onto fleet nodes.

    ``submit`` is the sink handed to the fleet's
    :class:`~repro.workload.arrivals.OpenLoopSource`; per-node routed
    counts live on the nodes themselves (``node.routed``).

    Parameters
    ----------
    health_aware:
        When True (the default), down nodes are removed from the candidate
        set before routing and degraded nodes are probabilistically
        de-weighted.  The no-failover ablation sets this False: the router
        keeps addressing dead nodes, whose queues silently grow.
    rng:
        Seeded stream for degraded de-weighting and learned routing
        weights (:meth:`set_weights`).  Only consulted when a degraded
        candidate coexists with a healthy one or weights are installed,
        so fleets that use neither draw nothing and stay bitwise
        reproducible.
    degraded_penalty:
        Probability a degraded node is dropped from the candidate set for
        one routing decision (0 = ignore degradation, 1 = hard-exclude
        while alternatives exist).
    on_unroutable:
        Callback for requests with zero live candidates (entire fleet
        down).  Default: mark the request dropped.
    """

    def __init__(
        self,
        nodes: Sequence[ClusterNode],
        router: Router,
        *,
        health_aware: bool = True,
        rng: Optional[np.random.Generator] = None,
        degraded_penalty: float = 0.5,
        on_unroutable: Optional[Callable] = None,
    ) -> None:
        if not nodes:
            raise ValueError("dispatcher needs at least one node")
        if not 0.0 <= degraded_penalty <= 1.0:
            raise ValueError(
                f"degraded_penalty must be in [0, 1], got {degraded_penalty!r}"
            )
        self.nodes: List[ClusterNode] = list(nodes)
        self.router = router
        self.health_aware = bool(health_aware)
        self.rng = rng
        self.degraded_penalty = float(degraded_penalty)
        self.on_unroutable = on_unroutable
        self.dispatched = 0
        #: Requests that found no live node to run on.
        self.unroutable = 0
        #: Optional per-node routing weights (node-id order).  When set —
        #: e.g. by the hierarchical fleet agent — they *replace* the
        #: router's decision with a weighted draw over the candidate set,
        #: costing exactly one ``rng.random()`` per routed request on both
        #: the scalar and the batched path.
        self.weights: Optional[np.ndarray] = None
        # Optional FleetBatch (batched fleet stepping): when attached,
        # candidate filtering and routing run on its stacked arrays instead
        # of per-node python attribute walks.  Decisions are bitwise
        # identical — see the batched branch of ``submit``.
        self._batch = None

    def attach_batch(self, batch) -> None:
        """Route through ``batch``'s stacked node arrays from now on."""
        self._batch = batch

    def set_weights(self, weights) -> None:
        """Install (or clear, with ``None``) per-node routing weights.

        Weights are indexed by node id and gate a weighted random pick
        over the live candidate set; down/de-weighted nodes are filtered
        *before* the draw, so a weight on a dead node is simply never
        consulted.  Requires the dispatcher's seeded ``rng`` stream —
        weighted routing is a random decision and must stay on the
        dedicated ``dispatch`` stream to keep runs replayable.
        """
        if weights is None:
            self.weights = None
            return
        if self.rng is None:
            raise ValueError(
                "dispatcher has no rng stream; weighted routing needs the "
                "seeded 'dispatch' stream (construct Dispatcher with rng=...)"
            )
        arr = np.asarray(weights, dtype=float)
        if arr.shape != (len(self.nodes),):
            raise ValueError(
                f"need one weight per node ({len(self.nodes)}), "
                f"got shape {arr.shape}"
            )
        if not np.isfinite(arr).all() or (arr <= 0).any():
            raise ValueError(
                "routing weights must be finite and strictly positive "
                "(floor tiny shares instead of zeroing them)"
            )
        self.weights = arr.copy()

    def _weighted_pick(self, ids: np.ndarray) -> int:
        """Position in ``ids`` drawn proportionally to ``self.weights``.

        One ``rng.random()`` per decision, identical arithmetic whether
        ``ids`` came from the scalar candidate list or the batched one —
        the two stepping modes stay bitwise interchangeable.
        """
        cum = np.cumsum(self.weights[ids])
        u = self.rng.random() * cum[-1]
        return min(int(np.searchsorted(cum, u, side="right")), ids.size - 1)

    def _candidates(self) -> List[ClusterNode]:
        cands = [n for n in self.nodes if not n.is_down]
        if not cands or self.rng is None or self.degraded_penalty == 0.0:
            return cands
        degraded = sum(1 for n in cands if n.is_degraded)
        if degraded == 0 or degraded == len(cands):
            # Nothing to de-weight, or no healthy alternative to shed to.
            return cands
        kept = [
            n
            for n in cands
            if not n.is_degraded or self.rng.random() >= self.degraded_penalty
        ]
        return kept if kept else [n for n in cands if not n.is_degraded]

    def submit(self, req) -> None:
        if self._batch is not None:
            self._submit_batched(req)
            return
        cands = self._candidates() if self.health_aware else self.nodes
        if not cands:
            self.unroutable += 1
            if self.on_unroutable is not None:
                self.on_unroutable(req)
            else:
                req.dropped = True
            return
        if self.weights is not None:
            ids = np.array([n.node_id for n in cands])
            idx = self._weighted_pick(ids)
        else:
            idx = self.router.select(cands)
            if not 0 <= idx < len(cands):
                raise IndexError(
                    f"router {self.router.name!r} selected node {idx} "
                    f"of {len(cands)}"
                )
        self.dispatched += 1
        cands[idx].submit(req)

    def _submit_batched(self, req) -> None:
        """Array-native replica of the scalar ``submit`` path.

        Decision-for-decision identical: same candidate filter (down nodes
        out, then probabilistic degraded de-weighting), same RNG draw
        schedule (``rng.random(k)`` produces bitwise the k values k
        sequential ``rng.random()`` calls would — one per degraded
        candidate, in node-id order), same router arithmetic (the routers'
        ``select_batch`` methods document their scalar equivalence).
        """
        batch = self._batch
        if self.health_aware:
            live_idx, deg_mask, n_deg = batch.live_candidates()
            if live_idx.size == 0:
                self.unroutable += 1
                if self.on_unroutable is not None:
                    self.on_unroutable(req)
                else:
                    req.dropped = True
                return
            if (
                self.rng is None
                or self.degraded_penalty == 0.0
                or n_deg == 0
                or n_deg == live_idx.size
            ):
                cand_idx = live_idx
            else:
                draws = self.rng.random(n_deg)
                keep = np.ones(live_idx.size, dtype=bool)
                keep[deg_mask] = draws >= self.degraded_penalty
                cand_idx = live_idx[keep]
                if cand_idx.size == 0:
                    cand_idx = live_idx[~deg_mask]
        else:
            cand_idx = batch.all_indices
        if self.weights is not None:
            pos = self._weighted_pick(cand_idx)
        else:
            select_batch = getattr(self.router, "select_batch", None)
            if select_batch is not None:
                pos = select_batch(batch, cand_idx)
            else:  # custom router: fall back to its scalar protocol
                pos = self.router.select(
                    [self.nodes[i] for i in cand_idx.tolist()]
                )
            if not 0 <= pos < cand_idx.size:
                raise IndexError(
                    f"router {self.router.name!r} selected node {pos} "
                    f"of {cand_idx.size}"
                )
        self.dispatched += 1
        self.nodes[int(cand_idx[pos])].submit(req)

    def routed_counts(self) -> List[int]:
        """Requests routed to each node so far, in node-id order."""
        return [node.routed for node in self.nodes]


class StragglerDetector:
    """Flag nodes whose recent tail latency strays far above the fleet.

    Periodically (driven by the cluster harness) computes each node's p99
    over the completions that landed since the previous check and compares
    it to the fleet-wide median of those window p99s: a node above
    ``multiple``x the median is marked ``degraded``; a degraded node back
    within bounds is restored to ``healthy``.  Only the healthy <->
    degraded edge is touched — down/recovering nodes belong to the
    lifecycle, though their completion cursor still advances so stale
    samples cannot condemn a node that just came back.
    """

    def __init__(
        self,
        nodes: Sequence[ClusterNode],
        *,
        multiple: float = 3.0,
        min_samples: int = 5,
        on_change: Optional[Callable[[ClusterNode, str], None]] = None,
    ) -> None:
        if multiple <= 1.0:
            raise ValueError(f"straggler multiple must be > 1, got {multiple!r}")
        self.nodes = list(nodes)
        self.multiple = float(multiple)
        self.min_samples = int(min_samples)
        self.on_change = on_change
        self._seen = [0] * len(self.nodes)
        #: (node_id, new_state) transitions, for tests/diagnostics.
        self.transitions: List[tuple] = []

    def check(self) -> None:
        """One detection pass over the window since the previous call."""
        window_p99 = []
        for i, node in enumerate(self.nodes):
            lats = node.server.metrics.latencies
            fresh = lats[self._seen[i]:]
            self._seen[i] = len(lats)
            if len(fresh) >= self.min_samples:
                window_p99.append(float(np.quantile(fresh, 0.99)))
            else:
                window_p99.append(float("nan"))
        finite = [p for p in window_p99 if np.isfinite(p)]
        if len(finite) < 2:
            return
        median = float(np.median(finite))
        if median <= 0.0:
            return
        for node, p99 in zip(self.nodes, window_p99):
            if node.state not in (HEALTHY, DEGRADED):
                continue
            if np.isfinite(p99) and p99 > self.multiple * median:
                if node.state == HEALTHY:
                    self._flip(node, DEGRADED)
            elif node.state == DEGRADED and np.isfinite(p99):
                self._flip(node, HEALTHY)

    def _flip(self, node: ClusterNode, state: str) -> None:
        node.state = state
        self.transitions.append((node.node_id, state))
        if self.on_change is not None:
            self.on_change(node, state)
