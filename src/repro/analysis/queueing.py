"""Analytic queueing models used to validate the simulator.

The discrete-event server is the foundation every result in this
reproduction stands on, so we cross-check it against closed-form queueing
theory where closed forms exist:

* **M/M/c** — Poisson arrivals, exponential service, c servers: Erlang-C
  waiting probability, mean wait, and the full sojourn-time distribution.
* **M/D/c** (approximation) — deterministic service; mean wait via the
  classic Cosmetatos-style heavy-traffic correction of M/M/c.
* **M/G/1** — Pollaczek–Khinchine mean waiting time from the first two
  service-time moments.

The integration tests run the simulator with matching parameters and
assert agreement, which pins down the arrival process, the FIFO queue, the
non-preemptive workers and the frequency/work accounting all at once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


__all__ = [
    "erlang_c",
    "MmcQueue",
    "mg1_mean_wait",
    "mdc_mean_wait",
]


def erlang_c(c: int, a: float) -> float:
    """Erlang-C formula: probability an arrival waits in M/M/c.

    Parameters
    ----------
    c:
        Number of servers.
    a:
        Offered load in Erlangs (``lambda / mu``); requires ``a < c``.

    Examples
    --------
    >>> round(erlang_c(1, 0.5), 3)   # M/M/1: P(wait) = rho
    0.5
    """
    if c <= 0:
        raise ValueError("c must be positive")
    if not 0 <= a < c:
        raise ValueError("need offered load 0 <= a < c for stability")
    if a == 0:
        return 0.0
    # Sum_{k<c} a^k/k!  computed stably in log space is unnecessary at the
    # sizes used here; direct iteration is exact enough.
    term = 1.0
    acc = 1.0
    for k in range(1, c):
        term *= a / k
        acc += term
    term *= a / c  # a^c / c!
    tail = term * (c / (c - a))
    return tail / (acc + tail)


@dataclass(frozen=True)
class MmcQueue:
    """M/M/c performance measures.

    Parameters
    ----------
    arrival_rate:
        lambda, requests/second.
    service_rate:
        mu, completions/second per server.
    servers:
        c.
    """

    arrival_rate: float
    service_rate: float
    servers: int

    def __post_init__(self) -> None:
        if self.arrival_rate < 0 or self.service_rate <= 0 or self.servers <= 0:
            raise ValueError("invalid M/M/c parameters")
        if self.utilization >= 1.0:
            raise ValueError("unstable queue: rho >= 1")

    @property
    def offered_load(self) -> float:
        return self.arrival_rate / self.service_rate

    @property
    def utilization(self) -> float:
        return self.offered_load / self.servers

    @property
    def wait_probability(self) -> float:
        """P(arrival must queue) — Erlang C."""
        return erlang_c(self.servers, self.offered_load)

    @property
    def mean_wait(self) -> float:
        """Expected queueing delay Wq (seconds)."""
        c, a = self.servers, self.offered_load
        return self.wait_probability / (c * self.service_rate - self.arrival_rate)

    @property
    def mean_sojourn(self) -> float:
        """Expected latency W = Wq + 1/mu."""
        return self.mean_wait + 1.0 / self.service_rate

    @property
    def mean_queue_length(self) -> float:
        """Expected number waiting, Lq = lambda * Wq (Little's law)."""
        return self.arrival_rate * self.mean_wait

    def sojourn_quantile(self, q: float) -> float:
        """Quantile of the sojourn-time distribution.

        For M/M/c the waiting time is 0 with prob ``1 - Pw`` and
        exponential with rate ``c mu - lambda`` otherwise; service is
        exponential with rate ``mu``.  The quantile is computed numerically
        from the convolution's closed-form CDF.
        """
        if not 0 < q < 1:
            raise ValueError("q must be in (0, 1)")
        pw = self.wait_probability
        mu = self.service_rate
        theta = self.servers * mu - self.arrival_rate  # conditional wait rate

        def cdf(t: float) -> float:
            # P(W + S <= t) with W the mixed wait and S ~ Exp(mu).
            s_only = 1.0 - math.exp(-mu * t)
            if abs(theta - mu) < 1e-12:
                conv = 1.0 - math.exp(-mu * t) * (1.0 + mu * t)
            else:
                conv = 1.0 - (
                    theta * math.exp(-mu * t) - mu * math.exp(-theta * t)
                ) / (theta - mu)
            return (1.0 - pw) * s_only + pw * conv

        lo, hi = 0.0, 1.0
        while cdf(hi) < q:
            hi *= 2.0
            if hi > 1e9:  # pragma: no cover - numerically impossible here
                raise RuntimeError("quantile search diverged")
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if cdf(mid) < q:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)


def mg1_mean_wait(arrival_rate: float, service_mean: float, service_scv: float) -> float:
    """Pollaczek–Khinchine mean wait for M/G/1.

    ``service_scv`` is the squared coefficient of variation
    (variance / mean^2) of the service time.
    """
    rho = arrival_rate * service_mean
    if not 0 <= rho < 1:
        raise ValueError("unstable M/G/1: rho >= 1")
    if service_scv < 0:
        raise ValueError("scv must be >= 0")
    return rho * service_mean * (1.0 + service_scv) / (2.0 * (1.0 - rho))


def mdc_mean_wait(arrival_rate: float, service_time: float, servers: int) -> float:
    """Approximate mean wait for M/D/c.

    Uses the standard two-moment reduction: deterministic service has
    SCV = 0, so ``Wq(M/D/c) ~ Wq(M/M/c) * (1 + 0) / 2``.
    """
    mmc = MmcQueue(arrival_rate, 1.0 / service_time, servers)
    return mmc.mean_wait / 2.0
