"""Tests for seeded RNG streams."""

import numpy as np

from repro.sim import RngRegistry, stream_seed


class TestRngRegistry:
    def test_same_name_returns_cached_generator(self):
        rngs = RngRegistry(1)
        assert rngs.get("a") is rngs.get("a")

    def test_different_names_give_independent_streams(self):
        rngs = RngRegistry(1)
        a = rngs.get("alpha").random(100)
        b = rngs.get("beta").random(100)
        assert not np.allclose(a, b)

    def test_same_seed_reproduces_streams(self):
        a = RngRegistry(42).get("x").random(50)
        b = RngRegistry(42).get("x").random(50)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngRegistry(1).get("x").random(50)
        b = RngRegistry(2).get("x").random(50)
        assert not np.allclose(a, b)

    def test_adding_stream_does_not_perturb_existing(self):
        r1 = RngRegistry(7)
        _ = r1.get("a").random(10)
        vals1 = r1.get("a").random(10)

        r2 = RngRegistry(7)
        _ = r2.get("a").random(10)
        _ = r2.get("new-stream").random(10)  # extra consumer
        vals2 = r2.get("a").random(10)
        assert np.array_equal(vals1, vals2)

    def test_get_fresh_is_uncached_and_deterministic(self):
        rngs = RngRegistry(3)
        a = rngs.get_fresh("ep").random(5)
        b = rngs.get_fresh("ep").random(5)
        assert np.array_equal(a, b)  # fresh generator restarts the stream

    def test_spawn_offsets_differ(self):
        rngs = RngRegistry(3)
        a = rngs.spawn("ep", 0).random(5)
        b = rngs.spawn("ep", 1).random(5)
        assert not np.allclose(a, b)

    def test_reset_clears_cache(self):
        rngs = RngRegistry(5)
        first = rngs.get("s").random(5)
        rngs.reset()
        again = rngs.get("s").random(5)
        assert np.array_equal(first, again)


class TestStreamSeed:
    def test_stable_across_calls(self):
        s1 = stream_seed(10, "arrivals")
        s2 = stream_seed(10, "arrivals")
        assert s1.entropy == s2.entropy and s1.spawn_key == s2.spawn_key

    def test_distinct_names_distinct_keys(self):
        assert stream_seed(10, "a").spawn_key != stream_seed(10, "b").spawn_key
