"""Tests for seeded RNG streams."""

import json

import numpy as np
import pytest

from repro.sim import RngRegistry, generator_state, restore_generator, stream_seed


class TestRngRegistry:
    def test_same_name_returns_cached_generator(self):
        rngs = RngRegistry(1)
        assert rngs.get("a") is rngs.get("a")

    def test_different_names_give_independent_streams(self):
        rngs = RngRegistry(1)
        a = rngs.get("alpha").random(100)
        b = rngs.get("beta").random(100)
        assert not np.allclose(a, b)

    def test_same_seed_reproduces_streams(self):
        a = RngRegistry(42).get("x").random(50)
        b = RngRegistry(42).get("x").random(50)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngRegistry(1).get("x").random(50)
        b = RngRegistry(2).get("x").random(50)
        assert not np.allclose(a, b)

    def test_adding_stream_does_not_perturb_existing(self):
        r1 = RngRegistry(7)
        _ = r1.get("a").random(10)
        vals1 = r1.get("a").random(10)

        r2 = RngRegistry(7)
        _ = r2.get("a").random(10)
        _ = r2.get("new-stream").random(10)  # extra consumer
        vals2 = r2.get("a").random(10)
        assert np.array_equal(vals1, vals2)

    def test_get_fresh_is_uncached_and_deterministic(self):
        rngs = RngRegistry(3)
        a = rngs.get_fresh("ep").random(5)
        b = rngs.get_fresh("ep").random(5)
        assert np.array_equal(a, b)  # fresh generator restarts the stream

    def test_spawn_offsets_differ(self):
        rngs = RngRegistry(3)
        a = rngs.spawn("ep", 0).random(5)
        b = rngs.spawn("ep", 1).random(5)
        assert not np.allclose(a, b)

    def test_reset_clears_cache(self):
        rngs = RngRegistry(5)
        first = rngs.get("s").random(5)
        rngs.reset()
        again = rngs.get("s").random(5)
        assert np.array_equal(first, again)


class TestGeneratorState:
    def test_roundtrip_continues_stream_bitwise(self):
        gen = np.random.default_rng(3)
        gen.random(100)  # advance mid-stream
        snap = generator_state(gen)
        expected = gen.random(50)
        other = np.random.default_rng(999)
        restore_generator(other, snap)
        assert np.array_equal(other.random(50), expected)

    def test_snapshot_is_json_safe(self):
        """PCG64's 128-bit state words must survive an actual JSON trip."""
        gen = np.random.default_rng(3)
        gen.random(10)
        snap = json.loads(json.dumps(generator_state(gen)))
        expected = gen.random(20)
        other = np.random.default_rng(0)
        restore_generator(other, snap)
        assert np.array_equal(other.random(20), expected)

    def test_bit_generator_mismatch_raises(self):
        pcg_state = generator_state(np.random.default_rng(1))
        mt = np.random.Generator(np.random.MT19937(1))
        with pytest.raises(ValueError, match="mismatch"):
            restore_generator(mt, pcg_state)


class TestRngStatePersistence:
    def test_cached_streams_continue_after_restore(self):
        r1 = RngRegistry(9)
        r1.get("arrivals").random(33)
        r1.get("service").random(7)
        snap = r1.state_dict()
        expected = {
            "arrivals": r1.get("arrivals").random(20),
            "service": r1.get("service").random(20),
        }
        r2 = RngRegistry(0)  # wrong seed, pre-consumed streams: all overwritten
        r2.get("arrivals").random(5)
        r2.load_state_dict(snap)
        assert r2.seed == 9
        for name, vals in expected.items():
            assert np.array_equal(r2.get(name).random(20), vals)

    def test_restored_spawn_and_get_fresh_continue_exact_sequences(self):
        """spawn/get_fresh are pure in (seed, name): a restored registry
        reproduces their streams exactly without them being snapshotted."""
        r1 = RngRegistry(9)
        r1.get("agent").random(10)
        snap = r1.state_dict()
        assert "agent" in snap["streams"] and "ep#3" not in snap["streams"]
        expected_spawn = r1.spawn("ep", 3).random(6)
        expected_fresh = r1.get_fresh("init").random(6)

        r2 = RngRegistry(0)
        r2.load_state_dict(snap)
        assert np.array_equal(r2.spawn("ep", 3).random(6), expected_spawn)
        assert np.array_equal(r2.get_fresh("init").random(6), expected_fresh)

    def test_snapshot_isolated_from_later_draws(self):
        r1 = RngRegistry(4)
        r1.get("x").random(5)
        snap = r1.state_dict()
        expected = r1.get("x").random(10)  # draws after the snapshot
        r2 = RngRegistry(4)
        r2.load_state_dict(snap)
        assert np.array_equal(r2.get("x").random(10), expected)

    def test_state_dict_is_json_safe(self):
        r1 = RngRegistry(6)
        r1.get("a").random(3)
        snap = json.loads(json.dumps(r1.state_dict()))
        expected = r1.get("a").random(8)
        r2 = RngRegistry(6)
        r2.load_state_dict(snap)
        assert np.array_equal(r2.get("a").random(8), expected)


class TestStreamSeed:
    def test_stable_across_calls(self):
        s1 = stream_seed(10, "arrivals")
        s2 = stream_seed(10, "arrivals")
        assert s1.entropy == s2.entropy and s1.spawn_key == s2.spawn_key

    def test_distinct_names_distinct_keys(self):
        assert stream_seed(10, "a").spawn_key != stream_seed(10, "b").spawn_key
