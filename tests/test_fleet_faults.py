"""Tests for fleet-level fault plans (FleetEvent / FleetFaultPlan)."""

import pytest

from repro.faults import (
    FLEET_FAULT_KINDS,
    FaultPlan,
    FleetEvent,
    FleetFaultPlan,
    standard_chaos_plan,
)


class TestFleetEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fleet fault kind"):
            FleetEvent(1.0, "node.teleport", duration=1.0)

    def test_window_validation(self):
        with pytest.raises(ValueError, match="time"):
            FleetEvent(-1.0, "node.crash", duration=1.0)
        with pytest.raises(ValueError, match="duration"):
            FleetEvent(1.0, "node.crash", duration=0.0)
        with pytest.raises(ValueError, match="node"):
            FleetEvent(1.0, "node.crash", node=-1, duration=1.0)
        with pytest.raises(ValueError, match="span"):
            FleetEvent(1.0, "rack.fail", span=0, duration=1.0)

    def test_end_is_window_close(self):
        ev = FleetEvent(2.0, "telemetry.partition", duration=3.0)
        assert ev.end == 5.0

    def test_all_kinds_constructible(self):
        for kind in FLEET_FAULT_KINDS:
            assert FleetEvent(0.0, kind, duration=1.0).kind == kind


class TestFleetFaultPlan:
    def test_events_sorted_by_time_node_kind(self):
        plan = FleetFaultPlan(events=(
            FleetEvent(5.0, "node.crash", node=1, duration=1.0),
            FleetEvent(1.0, "telemetry.partition", node=0, duration=1.0),
            FleetEvent(1.0, "node.crash", node=0, duration=1.0),
        ))
        assert [(e.time, e.kind) for e in plan.events] == [
            (1.0, "node.crash"),
            (1.0, "telemetry.partition"),
            (5.0, "node.crash"),
        ]

    def test_node_plans_sorted_and_validated(self):
        plan = FleetFaultPlan(node_plans=(
            (2, FaultPlan()), (0, FaultPlan(dvfs_fail_prob=0.1)),
        ))
        assert [node_id for node_id, _ in plan.node_plans] == [0, 2]
        with pytest.raises(ValueError, match="duplicate node plan"):
            FleetFaultPlan(node_plans=((1, FaultPlan()), (1, FaultPlan())))
        with pytest.raises(ValueError, match="node id"):
            FleetFaultPlan(node_plans=((-1, FaultPlan()),))
        with pytest.raises(TypeError, match="FaultPlan"):
            FleetFaultPlan(node_plans=((0, "not-a-plan"),))

    def test_recovery_knobs_validated(self):
        with pytest.raises(ValueError, match="retry_budget"):
            FleetFaultPlan(retry_budget=-1)
        with pytest.raises(ValueError, match="retry_backoff"):
            FleetFaultPlan(retry_backoff=0.0)
        with pytest.raises(ValueError, match="recovery_time"):
            FleetFaultPlan(recovery_time=-1.0)

    def test_empty_plan_detection(self):
        assert FleetFaultPlan().is_empty
        # A node plan that is itself empty keeps the fleet plan empty.
        assert FleetFaultPlan(node_plans=((0, FaultPlan()),)).is_empty
        assert not FleetFaultPlan(
            node_plans=((0, FaultPlan(dvfs_fail_prob=0.1)),)
        ).is_empty
        assert not FleetFaultPlan(
            events=(FleetEvent(1.0, "node.crash", duration=1.0),)
        ).is_empty

    def test_events_of_exact_kind(self):
        plan = FleetFaultPlan(events=(
            FleetEvent(1.0, "node.crash", duration=1.0),
            FleetEvent(2.0, "rack.fail", duration=1.0),
            FleetEvent(3.0, "node.crash", duration=1.0),
        ))
        assert len(plan.events_of("node.crash")) == 2
        assert len(plan.events_of("rack.fail")) == 1
        assert plan.events_of("telemetry.partition") == ()


class TestStandardChaosPlan:
    def test_argument_validation(self):
        with pytest.raises(ValueError, match="intensity"):
            standard_chaos_plan(-0.1, 4, 60.0)
        with pytest.raises(ValueError, match="num_nodes"):
            standard_chaos_plan(1.0, 0, 60.0)
        with pytest.raises(ValueError, match="duration"):
            standard_chaos_plan(1.0, 4, 0.0)

    def test_zero_intensity_is_empty(self):
        plan = standard_chaos_plan(0.0, 4, 60.0, seed=9)
        assert plan.is_empty
        assert plan.seed == 9

    def test_backbone_events_present(self):
        plan = standard_chaos_plan(1.0, 8, 100.0)
        assert len(plan.events_of("node.crash")) == 1
        assert len(plan.events_of("rack.fail")) == 1
        assert len(plan.events_of("telemetry.partition")) == 1
        (crash,) = plan.events_of("node.crash")
        assert crash.time == 25.0 and crash.duration == 20.0
        (rack,) = plan.events_of("rack.fail")
        assert rack.node == 4 and rack.span == 2
        assert len(plan.node_plans) == 8

    def test_single_node_fleet_has_no_rack_event(self):
        plan = standard_chaos_plan(1.0, 1, 60.0)
        assert plan.events_of("rack.fail") == ()
        (crash,) = plan.events_of("node.crash")
        assert crash.node == 0  # 1 % num_nodes wraps onto the only node

    def test_same_seed_same_plan(self):
        a = standard_chaos_plan(1.0, 4, 60.0, seed=3)
        b = standard_chaos_plan(1.0, 4, 60.0, seed=3)
        assert a == b

    def test_seed_namespaces_node_plans(self):
        a = standard_chaos_plan(1.0, 4, 60.0, seed=3)
        b = standard_chaos_plan(1.0, 4, 60.0, seed=4)
        assert a != b
        seeds = {p.seed for _, p in a.node_plans}
        assert len(seeds) == 4  # per-node derived seeds all distinct

    def test_intensity_scales_durations_and_rates(self):
        mild = standard_chaos_plan(0.5, 4, 100.0)
        wild = standard_chaos_plan(1.0, 4, 100.0)
        assert mild.events_of("node.crash")[0].duration < \
            wild.events_of("node.crash")[0].duration
        assert mild.node_plans[0][1].dvfs_fail_prob < \
            wild.node_plans[0][1].dvfs_fail_prob
        # Intensity above 1 stops stretching outages but keeps raising rates.
        wilder = standard_chaos_plan(2.0, 4, 100.0)
        assert wilder.events_of("node.crash")[0].duration == \
            wild.events_of("node.crash")[0].duration
        assert wilder.node_plans[0][1].dvfs_fail_prob > \
            wild.node_plans[0][1].dvfs_fail_prob

    def test_recovery_knobs_forwarded(self):
        plan = standard_chaos_plan(
            1.0, 4, 60.0, retry_budget=5, retry_backoff=0.1,
            recovery_time=2.5, drop_in_flight=True,
        )
        assert plan.retry_budget == 5
        assert plan.retry_backoff == 0.1
        assert plan.recovery_time == 2.5
        assert plan.drop_in_flight
        # Default recovery dwell is 5 % of the trace.
        assert standard_chaos_plan(1.0, 4, 60.0).recovery_time == 3.0
