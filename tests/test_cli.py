"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestValidation:
    def test_jobs_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiment", "fig5", "--jobs", "0"])
        assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_jobs_must_be_integer(self, capsys):
        with pytest.raises(SystemExit):
            main(["experiment", "fig5", "--jobs", "many"])
        assert "expects an integer" in capsys.readouterr().err

    def test_checkpoint_every_rejects_negative(self, capsys):
        with pytest.raises(SystemExit):
            main(["train", "--checkpoint-every", "-1"])
        assert "must be >= 1" in capsys.readouterr().err

    def test_resume_requires_checkpoint_dir(self, capsys):
        with pytest.raises(SystemExit):
            main(["train", "--resume"])
        assert "--resume requires --checkpoint-dir" in capsys.readouterr().err

    def test_resume_rejects_missing_dir(self, capsys, tmp_path):
        missing = str(tmp_path / "nope")
        with pytest.raises(SystemExit):
            main(["experiment", "fig5", "--resume", "--checkpoint-dir", missing])
        assert "does not exist" in capsys.readouterr().err

    def test_resume_accepts_existing_dir(self, capsys, tmp_path):
        assert main(
            ["experiment", "fig5", "--resume", "--checkpoint-dir", str(tmp_path)]
        ) == 0

    def test_power_cap_rejects_nonpositive(self, capsys):
        with pytest.raises(SystemExit):
            main(["fleet", "--power-cap", "-5"])
        assert "must be positive" in capsys.readouterr().err

    def test_power_cap_rejects_garbage(self, capsys):
        with pytest.raises(SystemExit):
            main(["fleet", "--power-cap", "lots"])
        assert "watts or 'auto'" in capsys.readouterr().err

    @pytest.mark.parametrize("bad", ["nan", "inf", "NaN"])
    def test_power_cap_rejects_nonfinite(self, capsys, bad):
        # float('nan') <= 0 is False, so without an explicit isfinite
        # check these used to sail through and traceback much later.
        with pytest.raises(SystemExit):
            main(["fleet", "--power-cap", bad])
        assert "finite" in capsys.readouterr().err

    @pytest.mark.parametrize("bad", ["nan", "inf"])
    def test_hier_power_budget_rejects_nonfinite(self, capsys, bad):
        with pytest.raises(SystemExit):
            main(["hier", "--power-budget", bad])
        assert "finite" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "flag", ["--load", "--intensity", "--retry-backoff"]
    )
    def test_chaos_rates_reject_nonfinite(self, capsys, flag):
        with pytest.raises(SystemExit):
            main(["chaos", flag, "nan"])
        assert "finite" in capsys.readouterr().err

    def test_hier_fed_avg_requires_shared_replay(self, capsys):
        assert main(["hier", "--fed-avg-every", "4"]) == 2
        assert "shared_replay" in capsys.readouterr().err

    def test_hier_rejects_unknown_algo(self, capsys):
        with pytest.raises(SystemExit):
            main(["hier", "--algo", "dqn"])
        assert "invalid choice" in capsys.readouterr().err

    def test_hier_resume_requires_checkpoint_dir(self, capsys):
        with pytest.raises(SystemExit):
            main(["hier", "--resume"])
        assert "--resume requires --checkpoint-dir" in capsys.readouterr().err

    def test_fleet_nodes_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            main(["fleet", "--nodes", "0"])
        assert "must be >= 1" in capsys.readouterr().err

    def test_fleet_load_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            main(["fleet", "--load", "0"])
        assert "must be > 0" in capsys.readouterr().err

    def test_chaos_nodes_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            main(["chaos", "--nodes", "0"])
        assert "must be >= 1" in capsys.readouterr().err

    def test_chaos_intensity_must_be_positive(self, capsys):
        for bad in ("0", "-1"):
            with pytest.raises(SystemExit):
                main(["chaos", "--intensity", bad])
            assert "must be > 0" in capsys.readouterr().err

    def test_chaos_retry_budget_rejects_negative(self, capsys):
        with pytest.raises(SystemExit):
            main(["chaos", "--retry-budget", "-1"])
        assert "must be >= 0" in capsys.readouterr().err

    def test_chaos_retry_backoff_rejects_nonpositive(self, capsys):
        with pytest.raises(SystemExit):
            main(["chaos", "--retry-backoff", "0"])
        assert "must be > 0" in capsys.readouterr().err

    def test_chaos_recovery_rejects_negative(self, capsys):
        with pytest.raises(SystemExit):
            main(["chaos", "--recovery", "-0.5"])
        assert "must be >= 0" in capsys.readouterr().err

    def test_chaos_rejects_non_numeric(self, capsys):
        with pytest.raises(SystemExit):
            main(["chaos", "--intensity", "heavy"])
        assert "expected a number" in capsys.readouterr().err


class TestFleetCommand:
    def test_fleet_run_and_group_by_node_round_trip(self, capsys, tmp_path):
        trace = str(tmp_path / "fleet.trace.jsonl")
        assert main([
            "fleet", "--nodes", "2", "--policy", "baseline",
            "--routing", "power-aware", "--power-cap", "auto",
            "--trace-out", trace,
        ]) == 0
        out = capsys.readouterr().out
        assert "fleet: 2 nodes" in out
        assert "power cap: budget=" in out and "[ok]" in out
        assert main(["trace", "summarize", trace, "--group-by", "node"]) == 0
        out = capsys.readouterr().out
        assert "node-summary=2" in out
        assert "powercap: budget_w=" in out

    def test_chaos_run_and_group_by_node_round_trip(self, capsys, tmp_path):
        trace = str(tmp_path / "chaos.trace.jsonl")
        assert main([
            "chaos", "--nodes", "2", "--seed", "2023", "--trace-out", trace,
        ]) == 0
        out = capsys.readouterr().out
        assert "chaos: 2 nodes" in out
        assert "chaos: crashes=" in out and "availability=" in out
        assert main(["trace", "summarize", trace, "--group-by", "node"]) == 0
        out = capsys.readouterr().out
        assert "node-summary=2" in out
        assert "faults: crashes=" in out

    def test_group_by_rejects_unknown_key(self, capsys):
        with pytest.raises(SystemExit):
            main(["trace", "summarize", "x.jsonl", "--group-by", "core"])
        assert "invalid choice" in capsys.readouterr().err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "table2" in out

    def test_experiment_fig5(self, capsys):
        assert main(["experiment", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "scaleFunc" in out

    def test_experiment_unknown_raises(self):
        with pytest.raises(KeyError):
            main(["experiment", "fig99"])

    def test_compare_rejects_unknown_policy(self, capsys):
        rc = main(["compare", "--app", "xapian", "--policies", "nonsense"])
        assert rc == 2

    def test_train_parser_defaults(self):
        args = build_parser().parse_args(["train", "--app", "moses"])
        assert args.app == "moses"
        assert args.episodes == 0
        assert args.fn is not None
